"""Out-of-order executors over the task DAG.

The scheduler owns *how* a :class:`~repro.runtime.dag.TaskGraph` is
executed.  Four execution modes share one dependency engine:

``threaded``
    A worker pool drains the ready set as dependencies resolve,
    executing task bodies out of order on host threads (BLAS releases
    the GIL, so tile kernels genuinely overlap).  The trace records
    wall-clock start/end times per worker.  Because every ordering
    constraint between tasks touching the same data is an explicit
    RAW/WAR/WAW edge, any interleaving the pool produces is bitwise
    identical to the serial elimination order.

``process``
    The GIL-free backend (:mod:`repro.parallel`): worker OS processes
    execute picklable task descriptors, exchanging tiles through
    mmap'd segment files (or shared memory); the coordinator keeps the
    DAG, hooks and trace.  Tasks without a descriptor run inline on
    the coordinator.  Same bitwise contract as ``threaded``; dead
    workers are transient faults (respawn + retry).

``serial``
    The same ready-set drain on the caller's thread (priority order,
    insertion-order tie-break) with wall-clock timing.  This is the
    reference execution the threaded mode must match bit for bit.

``simulated``
    The historical performance model: task bodies still execute (in
    dataflow order, on the host), but the trace times each task as it
    would run on the mapped *simulated device*, including transfer
    time for inputs that last lived on another device.  Mapping policy
    is owner-computes (the PaRSEC default for tile algorithms) with an
    earliest-available fallback.

The serial and threaded drains additionally expose per-task lifecycle
**hooks** (``Scheduler.hooks``): ``task_ready`` when a task enters the
ready set, ``task_dispatch`` just before its body runs, and
``task_complete`` after it finishes (or fails).  The out-of-core tile
store uses these to prefetch, pin and release a task's tiles
(:class:`repro.store.StoreSchedulerHooks`); execution semantics are
unchanged when no hooks are installed.

Failure model (see ``docs/architecture.md``, "Failure model &
recovery"): task bodies are pure, so a transiently failed task is
simply re-executed under the configured :class:`RetryPolicy` — capped
exponential backoff with deterministic seeded jitter, retries counted
in the task's :class:`TaskEvent`.  Permanent failures do **not** abort
the drain: the scheduler keeps executing every task that does not
depend on a failed one, then raises a single :class:`TaskGroupError`
aggregating all failures (with per-task context), the completed set
and the unfinished subgraph.  A per-task timeout (``task_timeout_s``)
turns stalled workers into :class:`TaskTimeoutError` failures via a
watchdog thread instead of hanging the drain.  The named injection
sites ``task-body`` and ``worker-stall`` fire here, before each body
attempt, when a :class:`~repro.resilience.faults.FaultPlan` is active.
"""

from __future__ import annotations

import heapq
import threading
import time
from dataclasses import dataclass, field

from repro.resilience.errors import TaskFailure, TaskGroupError, TaskTimeoutError
from repro.resilience.faults import SITE_TASK_BODY, SITE_WORKER_STALL, active_plan
from repro.resilience.retry import RetryPolicy, resolve_retry_policy
from repro.runtime.comm import CommunicationEngine
from repro.runtime.dag import TaskGraph
from repro.runtime.device import (
    Device,
    HOST_WORKER,
    make_devices,
)
from repro.runtime.task import DataHandle, Task
from repro.runtime.trace import ExecutionTrace, TaskEvent

EXECUTION_MODES = ("threaded", "serial", "simulated", "process")


@dataclass
class ScheduleResult:
    """Outcome of scheduling (and executing) a task graph."""

    trace: ExecutionTrace
    comm: CommunicationEngine
    devices: list[Device]

    @property
    def makespan(self) -> float:
        return self.trace.makespan

    @property
    def throughput(self) -> float:
        return self.trace.throughput()

    def summary(self) -> dict[str, float]:
        out = self.trace.summary()
        out["bytes_moved"] = float(self.comm.total_bytes)
        out["num_transfers"] = float(self.comm.num_transfers)
        return out


class SchedulerError(RuntimeError):
    """A schedule could not make progress (dependency deadlock)."""


def _ready_heap(graph: TaskGraph):
    """Initial ready set plus the bookkeeping the drain loops share."""
    indegree = {t: len(graph.predecessors(t)) for t in graph.tasks}
    order_index = {t: i for i, t in enumerate(graph.tasks)}
    ready: list[tuple[int, int, Task]] = []
    for t in graph.tasks:
        if indegree[t] == 0:
            heapq.heappush(ready, (-t.priority, order_index[t], t))
    return indegree, order_index, ready


@dataclass
class Scheduler:
    """Dependency-driven executor with selectable execution mode.

    Parameters
    ----------
    devices:
        Simulated devices (``simulated`` mode only); default one
        generic GPU.
    comm:
        Communication engine used for transfer accounting in the
        simulated mode.
    execute_bodies:
        When False task bodies are skipped in *every* mode and only the
        schedule bookkeeping runs (useful for very large synthetic DAGs
        in the performance model — the simulated mode keeps its device
        timing, the threaded/serial modes time empty drains).  Fault
        injection and retries are also skipped: there is no body to
        fail or re-run.
    owner_computes:
        Simulated-mode mapping policy: tasks run on the home device of
        their first written handle; otherwise on the earliest-free
        device.
    execution:
        ``"threaded"``, ``"serial"``, ``"simulated"`` or ``"process"``
        (default keeps the historical behaviour for direct
        ``Scheduler`` users).
    workers:
        Worker threads of the threaded mode (capped at the task count
        per run; 1 falls back to the serial drain) or worker
        *processes* of the process mode (always pooled, even at 1 — a
        single-worker process run exercises the full descriptor/
        exchange path and stays bitwise identical to serial).
    hooks:
        Optional task-lifecycle observer with ``task_ready`` /
        ``task_dispatch`` / ``task_complete`` methods (the serial and
        threaded drains call them; the simulated mode does not).  Used
        by the out-of-core store to pin/prefetch task tiles.
    retry_policy:
        Pacing of per-task re-execution after *transient* failures
        (``None`` resolves from ``REPRO_TASK_RETRIES``, else fail-fast;
        pass ``RetryPolicy(max_retries=0)`` to force fail-fast even
        when the env knob is set).
    task_timeout_s:
        Per-task wall-clock budget.  The serial drain checks it post
        hoc; the threaded drain runs a watchdog that marks overdue
        tasks as :class:`TaskTimeoutError` failures and releases their
        worker slot so the drain terminates instead of hanging.
    """

    devices: list[Device] = field(default_factory=lambda: make_devices(1))
    comm: CommunicationEngine = field(default_factory=CommunicationEngine)
    execute_bodies: bool = True
    owner_computes: bool = True
    execution: str = "simulated"
    workers: int = 1
    hooks: object | None = None
    retry_policy: RetryPolicy | None = None
    task_timeout_s: float | None = None

    def __post_init__(self) -> None:
        if self.execution not in EXECUTION_MODES:
            raise ValueError(
                f"execution must be one of {EXECUTION_MODES}, got "
                f"{self.execution!r}"
            )
        self.workers = max(1, int(self.workers))
        if self.retry_policy is None:
            self.retry_policy = resolve_retry_policy()
        if self.task_timeout_s is not None and self.task_timeout_s <= 0:
            raise ValueError("task_timeout_s must be positive")

    def run(self, graph: TaskGraph) -> ScheduleResult:
        """Execute (and time) ``graph`` under the configured mode."""
        if not graph.is_acyclic():
            raise RuntimeError("task graph contains a cycle")
        if self.execution == "simulated":
            return self._run_simulated(graph)
        if self.execution == "process":
            if not self.execute_bodies:
                # nothing to ship to a worker: time the bookkeeping
                return self._run_serial(graph)
            return self._run_process(graph)
        if self.execution == "serial" or self.workers <= 1 \
                or graph.num_tasks <= 1:
            return self._run_serial(graph)
        return self._run_threaded(graph)

    def _run_process(self, graph: TaskGraph) -> ScheduleResult:
        from repro.parallel.executor import run_process

        return run_process(self, graph)

    def close(self) -> None:
        """Release executor resources (the process mode's worker pool).

        Idempotent and safe in every mode; a scheduler is usable again
        after ``close()`` (the next process drain starts a fresh pool).
        """
        pool = getattr(self, "_pool", None)
        finalizer = getattr(self, "_pool_finalizer", None)
        self._pool = None
        self._pool_finalizer = None
        if finalizer is not None:
            finalizer.detach()
        if pool is not None:
            pool.shutdown()

    # ------------------------------------------------------------------
    # body execution with fault injection + retry
    # ------------------------------------------------------------------
    def _execute_task(self, task: Task) -> tuple[int, BaseException | None]:
        """Run ``task``'s body with injection and retries.

        Returns ``(retries_taken, error)``; ``error`` is ``None`` on
        success.  Injection sites fire *before* the body on every
        attempt, so a retried attempt sees a fresh schedule decision.
        Bodies are pure functions of their (quantized) inputs: however
        many attempts a task takes, its successful output is bitwise
        the output of the fault-free run.
        """
        if not self.execute_bodies:
            return 0, None
        policy = self.retry_policy
        key = f"{task.name}#{task.uid}"
        attempt = 0
        while True:
            try:
                plan = active_plan()
                if plan is not None:
                    plan.inject(SITE_WORKER_STALL, key)
                    plan.inject(SITE_TASK_BODY, key)
                task.execute()
                return attempt, None
            except BaseException as exc:  # noqa: BLE001 - reported upstream
                if (policy is None or attempt >= policy.max_retries
                        or not policy.retryable(exc)):
                    return attempt, exc
                time.sleep(policy.delay(attempt, key))
                attempt += 1

    @staticmethod
    def _group_error(graph: TaskGraph, failures: list[TaskFailure],
                     completed: list[Task], order_index: dict[Task, int],
                     trace: ExecutionTrace) -> TaskGroupError:
        """Assemble the aggregate error for a drain that saw failures.

        ``unfinished`` is the failed tasks plus everything left blocked
        or unstarted, in insertion order — re-adding them to a fresh
        graph re-derives exactly the induced dependency subgraph, which
        is what makes post-failure runs resumable.
        """
        done = set(completed)
        unfinished = [t for t in graph.tasks if t not in done]
        failures = sorted(failures, key=lambda f: order_index[f.task])
        return TaskGroupError(failures=failures, completed=tuple(completed),
                              unfinished=tuple(unfinished), trace=trace)

    # ------------------------------------------------------------------
    # serial drain (the threaded mode's bitwise reference)
    # ------------------------------------------------------------------
    def _run_serial(self, graph: TaskGraph) -> ScheduleResult:
        indegree, order_index, ready = _ready_heap(graph)
        hooks = self.hooks
        if hooks is not None:
            for _, _, task in ready:
                hooks.task_ready(task)
        trace = ExecutionTrace()
        worker = make_devices(1, HOST_WORKER)
        t0 = time.perf_counter()
        completed: list[Task] = []
        failures: list[TaskFailure] = []
        timeout = self.task_timeout_s
        while ready:
            _, _, task = heapq.heappop(ready)
            if hooks is not None:
                hooks.task_dispatch(task)
            start = time.perf_counter() - t0
            try:
                retries, error = self._execute_task(task)
            finally:
                if hooks is not None:
                    hooks.task_complete(task)
            end = time.perf_counter() - t0
            if error is None and timeout is not None and end - start > timeout:
                # post-hoc check: a single-threaded drain cannot preempt
                error = TaskTimeoutError(task.name, task.uid, task.tag,
                                         timeout, end - start)
            if error is not None:
                failures.append(TaskFailure(task=task, error=error,
                                            retries=retries))
                continue  # successors stay blocked; drain the rest
            completed.append(task)
            trace.add(TaskEvent(
                task_name=task.name, task_uid=task.uid, device=0,
                start=start, end=end, flops=task.flops,
                precision=task.precision, tag=task.tag,
                flops_detail=task.flops_detail, retries=retries,
            ))
            worker[0].busy_time += end - start
            worker[0].tasks_executed += 1
            for succ in graph.successors(task):
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    heapq.heappush(
                        ready, (-succ.priority, order_index[succ], succ))
                    if hooks is not None:
                        hooks.task_ready(succ)
        if failures:
            raise self._group_error(graph, failures, completed, order_index,
                                    trace)
        if len(completed) != graph.num_tasks:
            raise SchedulerError(
                f"schedule executed {len(completed)} of {graph.num_tasks} "
                "tasks (dependency deadlock)"
            )
        worker[0].busy_until = time.perf_counter() - t0
        return ScheduleResult(trace=trace, comm=CommunicationEngine(),
                              devices=worker)

    # ------------------------------------------------------------------
    # threaded out-of-order execution
    # ------------------------------------------------------------------
    def _run_threaded(self, graph: TaskGraph) -> ScheduleResult:
        indegree, order_index, ready = _ready_heap(graph)
        hooks = self.hooks
        if hooks is not None:
            for _, _, task in ready:
                hooks.task_ready(task)
        num_workers = min(self.workers, max(1, graph.num_tasks))
        workers = make_devices(num_workers, HOST_WORKER)
        trace = ExecutionTrace()
        timeout = self.task_timeout_s

        lock = threading.Lock()
        cond = threading.Condition(lock)
        state = {"in_flight": 0, "done": False, "timeouts": 0}
        completed: list[Task] = []
        failures: list[TaskFailure] = []
        # tasks the watchdog gave up on: their worker (if it ever comes
        # back) must discard the result instead of double-accounting it
        timed_out: set[Task] = set()
        inflight_start: dict[Task, float] = {}
        t0 = time.perf_counter()

        def worker_loop(widx: int) -> None:
            device = workers[widx]
            while True:
                with cond:
                    while not ready and state["in_flight"] > 0:
                        cond.wait()
                    if not ready:
                        cond.notify_all()
                        return
                    _, _, task = heapq.heappop(ready)
                    state["in_flight"] += 1
                    inflight_start[task] = time.perf_counter()
                # pinning happens outside the scheduler lock: the store
                # takes its own lock and never waits on this one
                if hooks is not None:
                    hooks.task_dispatch(task)
                start = time.perf_counter() - t0
                try:
                    retries, error = self._execute_task(task)
                finally:
                    if hooks is not None:
                        hooks.task_complete(task)
                end = time.perf_counter() - t0
                with cond:
                    if task in timed_out:
                        # the watchdog already failed this task and
                        # released our slot; drop the late result
                        timed_out.discard(task)
                        cond.notify_all()
                        continue
                    inflight_start.pop(task, None)
                    state["in_flight"] -= 1
                    if error is not None:
                        failures.append(TaskFailure(task=task, error=error,
                                                    retries=retries))
                        cond.notify_all()
                        continue
                    completed.append(task)
                    trace.add(TaskEvent(
                        task_name=task.name, task_uid=task.uid, device=widx,
                        start=start, end=end, flops=task.flops,
                        precision=task.precision, tag=task.tag,
                        flops_detail=task.flops_detail, retries=retries,
                    ))
                    device.busy_time += end - start
                    device.tasks_executed += 1
                    for succ in graph.successors(task):
                        indegree[succ] -= 1
                        if indegree[succ] == 0:
                            heapq.heappush(
                                ready,
                                (-succ.priority, order_index[succ], succ))
                            if hooks is not None:
                                hooks.task_ready(succ)
                    cond.notify_all()

        def watchdog_loop() -> None:
            poll = max(0.005, min(timeout / 4.0, 0.1))
            while True:
                with cond:
                    if state["done"]:
                        return
                    now = time.perf_counter()
                    expired = [(t, ts) for t, ts in inflight_start.items()
                               if now - ts > timeout]
                    for task, started in expired:
                        del inflight_start[task]
                        timed_out.add(task)
                        state["in_flight"] -= 1
                        state["timeouts"] += 1
                        failures.append(TaskFailure(
                            task=task,
                            error=TaskTimeoutError(
                                task.name, task.uid, task.tag, timeout,
                                now - started),
                            retries=0))
                    if expired:
                        cond.notify_all()
                    cond.wait(timeout=poll)

        threads = [
            threading.Thread(target=worker_loop, args=(i,),
                             name=f"repro-runtime-{i}", daemon=True)
            for i in range(num_workers)
        ]
        for t in threads:
            t.start()
        watchdog = None
        if timeout is not None:
            watchdog = threading.Thread(target=watchdog_loop,
                                        name="repro-runtime-watchdog",
                                        daemon=True)
            watchdog.start()

        with cond:
            while ready or state["in_flight"] > 0:
                cond.wait()
            state["done"] = True
            cond.notify_all()
            had_timeouts = state["timeouts"] > 0
        # workers stuck inside a timed-out body stay behind as daemons;
        # everyone else exits promptly once the ready set is empty
        for t in threads:
            t.join(timeout=0.5 if had_timeouts else None)
        if watchdog is not None:
            watchdog.join(timeout=1.0)

        if failures:
            raise self._group_error(graph, failures, completed, order_index,
                                    trace)
        if len(completed) != graph.num_tasks:
            raise SchedulerError(
                f"schedule executed {len(completed)} of {graph.num_tasks} "
                "tasks (dependency deadlock)"
            )
        return ScheduleResult(trace=trace, comm=CommunicationEngine(),
                              devices=workers)

    # ------------------------------------------------------------------
    # simulated-device timing (the historical mode)
    # ------------------------------------------------------------------
    def _run_simulated(self, graph: TaskGraph) -> ScheduleResult:
        for device in self.devices:
            device.reset()
        self.comm.reset()
        trace = ExecutionTrace()

        # location of each handle's current valid copy
        location: dict[DataHandle, int] = {}
        finish_time: dict[Task, float] = {}

        indegree, order_index, ready = _ready_heap(graph)

        completed: list[Task] = []
        failures: list[TaskFailure] = []
        while ready:
            _, _, task = heapq.heappop(ready)
            device = self._map_task(task, location)

            # inputs become available when predecessors finish
            data_ready = max(
                (finish_time[p] for p in graph.predecessors(task)), default=0.0
            )

            # transfer inputs that live elsewhere
            transfer_time = 0.0
            for handle in task.reads:
                src = location.get(handle, handle.home_device)
                if src != device.index:
                    self.comm.record_transfer(handle, src, device.index,
                                              task.precision)
                    nbytes = handle.nbytes(
                        self.comm.wire_precision(handle.precision, task.precision)
                    )
                    transfer_time += device.model.transfer_time(nbytes)
                    device.bytes_received += nbytes
                    location[handle] = device.index

            start = max(device.busy_until, data_ready) + transfer_time
            duration = device.model.task_time(task.flops, task.precision)
            end = start + duration

            retries, error = self._execute_task(task)
            if error is not None:
                failures.append(TaskFailure(task=task, error=error,
                                            retries=retries))
                continue  # successors stay blocked, as in the real drains

            device.busy_until = end
            device.busy_time += duration
            device.tasks_executed += 1
            finish_time[task] = end
            for handle in task.writes:
                location[handle] = device.index

            trace.add(TaskEvent(
                task_name=task.name,
                task_uid=task.uid,
                device=device.index,
                start=start,
                end=end,
                flops=task.flops,
                precision=task.precision,
                tag=task.tag,
                flops_detail=task.flops_detail,
                retries=retries,
            ))
            completed.append(task)

            for succ in graph.successors(task):
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    heapq.heappush(ready, (-succ.priority, order_index[succ], succ))

        if failures:
            raise self._group_error(graph, failures, completed, order_index,
                                    trace)
        if len(completed) != graph.num_tasks:
            raise SchedulerError(
                f"schedule executed {len(completed)} of {graph.num_tasks} "
                "tasks (dependency deadlock)"
            )
        return ScheduleResult(trace=trace, comm=self.comm, devices=self.devices)

    # ------------------------------------------------------------------
    def _map_task(self, task: Task, location: dict[DataHandle, int]) -> Device:
        if self.owner_computes and task.writes:
            target = task.writes[0]
            idx = location.get(target, target.home_device) % len(self.devices)
            return self.devices[idx]
        return min(self.devices, key=lambda d: d.busy_until)
