"""Communication accounting with precision-conversion placement.

Section VI-B1 of the paper describes a data-motion optimization unique
to the mixed-precision setting: before PaRSEC moves a tile between
ranks it compares the tile's current precision with the precision the
destination task needs and converts

* **at the sender** when the destination needs a *narrower* precision
  (ship fewer bytes), or
* **at the receiver** when the destination needs a *wider* precision
  (again ship fewer bytes — the narrow representation travels).

Either way the bytes on the wire correspond to the narrower of the two
formats.  :class:`CommunicationEngine` reproduces this policy and
keeps the byte ledger used by the data-motion experiments.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.precision.formats import Precision
from repro.runtime.task import DataHandle


class ConversionPolicy(enum.Enum):
    """Where a precision conversion is performed for a transfer."""

    SENDER = "sender"
    RECEIVER = "receiver"
    NONE = "none"


@dataclass(frozen=True)
class TransferRecord:
    """One tile transfer between devices."""

    handle_name: str
    src_device: int
    dst_device: int
    src_precision: Precision
    dst_precision: Precision
    bytes_moved: int
    policy: ConversionPolicy


def decide_conversion_side(src: Precision, dst: Precision) -> ConversionPolicy:
    """The paper's rule for where to convert a tile before moving it.

    Narrower destination → convert at the sender; wider destination →
    convert at the receiver; equal precisions → no conversion.
    """
    if src == dst:
        return ConversionPolicy.NONE
    if dst.narrower_than(src):
        return ConversionPolicy.SENDER
    return ConversionPolicy.RECEIVER


@dataclass
class CommunicationEngine:
    """Byte ledger for inter-device tile movement.

    Parameters
    ----------
    adaptive_conversion:
        When True (paper behaviour) the conversion-side rule above is
        applied and the wire format is the narrower of source and
        destination precisions.  When False the tile always travels in
        its source precision and any conversion happens at the
        receiver — the baseline the paper improves upon.
    """

    adaptive_conversion: bool = True
    transfers: list[TransferRecord] = field(default_factory=list)

    # ------------------------------------------------------------------
    def wire_precision(self, src: Precision, dst: Precision) -> Precision:
        if not self.adaptive_conversion:
            return src
        return Precision.narrowest(src, dst)

    def record_transfer(self, handle: DataHandle, src_device: int, dst_device: int,
                        required_precision: Precision) -> TransferRecord:
        """Account for moving ``handle`` to ``dst_device`` at ``required_precision``."""
        src_p = handle.precision
        wire_p = self.wire_precision(src_p, required_precision)
        policy = (
            decide_conversion_side(src_p, required_precision)
            if self.adaptive_conversion
            else (ConversionPolicy.NONE if src_p == required_precision
                  else ConversionPolicy.RECEIVER)
        )
        record = TransferRecord(
            handle_name=handle.name,
            src_device=src_device,
            dst_device=dst_device,
            src_precision=src_p,
            dst_precision=required_precision,
            bytes_moved=handle.nbytes(wire_p),
            policy=policy,
        )
        self.transfers.append(record)
        return record

    # ------------------------------------------------------------------
    # ledger queries
    # ------------------------------------------------------------------
    @property
    def total_bytes(self) -> int:
        return sum(t.bytes_moved for t in self.transfers)

    @property
    def num_transfers(self) -> int:
        return len(self.transfers)

    def bytes_by_policy(self) -> dict[ConversionPolicy, int]:
        out: dict[ConversionPolicy, int] = {}
        for t in self.transfers:
            out[t.policy] = out.get(t.policy, 0) + t.bytes_moved
        return out

    def savings_vs_source_precision(self) -> int:
        """Bytes saved relative to always shipping in the source precision."""
        baseline = 0
        actual = 0
        for t in self.transfers:
            # reconstruct source-precision size from the moved size
            wire_p = self.wire_precision(t.src_precision, t.dst_precision)
            elems = t.bytes_moved // max(wire_p.bytes_per_element, 1)
            baseline += elems * t.src_precision.bytes_per_element
            actual += t.bytes_moved
        return baseline - actual

    def reset(self) -> None:
        self.transfers.clear()
