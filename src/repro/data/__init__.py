"""Synthetic GWAS data substrate.

The paper evaluates on restricted-access UK BioBank data plus synthetic
cohorts from msprime.  Neither is available here, so this package
provides generators whose *statistical structure* matches what the
paper's conclusions rely on:

* genotypes coded 0/1/2 with realistic allele-frequency spectra and
  linkage-disequilibrium (LD) block structure
  (:mod:`repro.data.genotypes`), plus a simplified coalescent simulator
  standing in for msprime (:mod:`repro.data.coalescent`);
* quantitative and liability-threshold phenotypes driven by additive
  effects, *epistatic* (pairwise-interaction) effects, and confounder
  effects (:mod:`repro.data.phenotypes`) — the epistatic component is
  what makes KRR outperform linear RR, the paper's central accuracy
  claim;
* confounder covariates (age, sex, genetic principal components)
  (:mod:`repro.data.confounders`);
* a UK-BioBank-like multi-disease cohort builder (:mod:`repro.data.ukb`);
* dataset containers with train/test splitting and (de)serialization
  (:mod:`repro.data.dataset`, :mod:`repro.data.io`).
"""

from repro.data.genotypes import GenotypeSimulator, LDBlockConfig, simulate_genotypes
from repro.data.coalescent import CoalescentSimulator, simulate_coalescent_genotypes
from repro.data.phenotypes import (
    PhenotypeModel,
    simulate_phenotypes,
    liability_to_binary,
)
from repro.data.confounders import simulate_confounders
from repro.data.ukb import UKBLikeCohort, make_ukb_like_cohort, DISEASES
from repro.data.dataset import GWASDataset, TrainTestSplit
from repro.data.io import load_dataset, save_dataset

__all__ = [
    "GenotypeSimulator",
    "LDBlockConfig",
    "simulate_genotypes",
    "CoalescentSimulator",
    "simulate_coalescent_genotypes",
    "PhenotypeModel",
    "simulate_phenotypes",
    "liability_to_binary",
    "simulate_confounders",
    "UKBLikeCohort",
    "make_ukb_like_cohort",
    "DISEASES",
    "GWASDataset",
    "TrainTestSplit",
    "save_dataset",
    "load_dataset",
]
