"""A simplified coalescent genotype simulator (msprime stand-in).

The paper uses msprime to generate open synthetic cohorts (300K
patients × 40K SNPs) when UK BioBank licensing forbids moving the real
data to Alps.  msprime simulates the exact ancestral recombination
graph; we implement a much simplified — but structurally faithful —
backwards-in-time coalescent per non-recombining segment:

1. For each segment (a run of SNPs inheriting the same tree), a random
   binary coalescent tree over the 2N haplotypes is generated with
   exponential waiting times (Kingman's coalescent).
2. Mutations are dropped on tree branches with probability proportional
   to branch length; every haplotype below the mutated branch carries
   the derived allele.
3. Haplotypes are paired into diploid 0/1/2 genotypes.

This reproduces the two properties the paper's synthetic experiments
need: a realistic (neutral) allele-frequency spectrum — most variants
rare — and strong LD within segments with free recombination between
them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CoalescentSimulator", "simulate_coalescent_genotypes"]


@dataclass
class CoalescentSimulator:
    """Kingman-coalescent-with-mutations genotype simulator.

    Parameters
    ----------
    segment_snps:
        Number of SNPs sharing each coalescent tree (a proxy for the
        recombination rate: larger → longer LD blocks).
    seed:
        RNG seed.
    """

    segment_snps: int = 25
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.segment_snps <= 0:
            raise ValueError("segment_snps must be positive")
        self._rng = np.random.default_rng(self.seed)

    # ------------------------------------------------------------------
    def _coalescent_tree(self, n_leaves: int):
        """Simulate one Kingman coalescent tree.

        Returns ``(children, branch_lengths, leaf_sets)`` where
        ``leaf_sets[node]`` is the set of leaf indices below each node
        (represented as a boolean matrix for speed).
        """
        rng = self._rng
        n_nodes = 2 * n_leaves - 1
        # membership[node] = boolean mask over leaves below that node
        membership = np.zeros((n_nodes, n_leaves), dtype=bool)
        membership[np.arange(n_leaves), np.arange(n_leaves)] = True
        node_times = np.zeros(n_nodes)
        branch_lengths = np.zeros(n_nodes)

        active = list(range(n_leaves))
        next_node = n_leaves
        t = 0.0
        while len(active) > 1:
            k = len(active)
            rate = k * (k - 1) / 2.0
            t += rng.exponential(1.0 / rate)
            i, j = rng.choice(len(active), size=2, replace=False)
            a, b = active[i], active[j]
            membership[next_node] = membership[a] | membership[b]
            node_times[next_node] = t
            branch_lengths[a] = t - node_times[a]
            branch_lengths[b] = t - node_times[b]
            # remove a and b, add the new internal node
            active = [x for idx, x in enumerate(active) if idx not in (i, j)]
            active.append(next_node)
            next_node += 1
        # the root's branch length stays 0
        return membership, branch_lengths

    def _segment_haplotypes(self, n_haplotypes: int, n_snps: int) -> np.ndarray:
        """Haplotypes (0/1) for one segment sharing a single tree."""
        membership, branch_lengths = self._coalescent_tree(n_haplotypes)
        total = branch_lengths.sum()
        if total <= 0:
            return np.zeros((n_haplotypes, n_snps), dtype=np.int8)
        probs = branch_lengths / total
        haplos = np.zeros((n_haplotypes, n_snps), dtype=np.int8)
        # drop one mutation per SNP on a branch chosen ∝ its length;
        # conditioning on exactly one mutation per segregating site is the
        # standard infinite-sites simplification
        branches = self._rng.choice(len(branch_lengths), size=n_snps, p=probs)
        for s, br in enumerate(branches):
            haplos[membership[br], s] = 1
        return haplos

    def simulate(self, n_individuals: int, n_snps: int) -> np.ndarray:
        """Return an ``n_individuals × n_snps`` int8 genotype matrix (0/1/2)."""
        if n_individuals <= 0 or n_snps <= 0:
            raise ValueError("dimensions must be positive")
        n_haplotypes = 2 * n_individuals
        genotype_cols: list[np.ndarray] = []
        for start in range(0, n_snps, self.segment_snps):
            width = min(self.segment_snps, n_snps - start)
            haplos = self._segment_haplotypes(n_haplotypes, width)
            genotype_cols.append(
                (haplos[0::2, :] + haplos[1::2, :]).astype(np.int8)
            )
        return np.hstack(genotype_cols)


def simulate_coalescent_genotypes(n_individuals: int, n_snps: int,
                                  segment_snps: int = 25,
                                  seed: int | None = None) -> np.ndarray:
    """Convenience wrapper around :class:`CoalescentSimulator`."""
    sim = CoalescentSimulator(segment_snps=segment_snps, seed=seed)
    return sim.simulate(n_individuals, n_snps)


def site_frequency_spectrum(genotypes: np.ndarray, n_bins: int = 10) -> np.ndarray:
    """Histogram of derived-allele frequencies (diagnostic for the simulator).

    Under the neutral coalescent the expected spectrum is ∝ 1/f — most
    sites rare — which is what distinguishes coalescent data from the
    uniform-frequency random fills also used in the paper's largest runs.
    """
    g = np.asarray(genotypes, dtype=np.float64)
    freqs = g.mean(axis=0) / 2.0
    hist, _ = np.histogram(freqs, bins=n_bins, range=(0.0, 1.0))
    return hist
