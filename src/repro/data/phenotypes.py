"""Phenotype simulation with additive, epistatic and confounder effects.

The paper's central accuracy claim is that KRR captures *epistasis* —
non-additive interactions between loci — that linear RR misses
(Table I: Pearson correlation 0.20–0.32 for RR vs 0.81–0.87 for KRR).
To reproduce that gap with synthetic data, the generative model must
contain a substantial non-linear genetic component.  The
:class:`PhenotypeModel` mixes four variance components:

* additive SNP effects (classical polygenic signal),
* pairwise epistatic (product) interactions between randomly paired
  causal SNPs,
* confounder effects (age, sex, principal components), and
* Gaussian environmental noise.

Quantitative traits are returned standardized; disease-like binary
traits use the liability-threshold model with a configurable
prevalence, mirroring how the five UK BioBank diseases are encoded.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["PhenotypeModel", "simulate_phenotypes", "liability_to_binary"]


@dataclass
class PhenotypeModel:
    """Generative model for one phenotype.

    Parameters
    ----------
    n_causal:
        Number of causal SNPs with additive effects.
    n_epistatic_pairs:
        Number of interacting SNP pairs contributing product terms.
    heritability_additive:
        Fraction of phenotypic variance from additive effects.
    heritability_epistatic:
        Fraction of phenotypic variance from epistatic interactions.
    confounder_variance:
        Fraction of variance explained by confounders (when provided).
    seed:
        RNG seed.
    """

    n_causal: int = 50
    n_epistatic_pairs: int = 25
    heritability_additive: float = 0.25
    heritability_epistatic: float = 0.45
    confounder_variance: float = 0.05
    seed: int | None = None
    causal_snps_: np.ndarray | None = field(default=None, repr=False)
    epistatic_pairs_: np.ndarray | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        total = (self.heritability_additive + self.heritability_epistatic
                 + self.confounder_variance)
        if total > 1.0 + 1e-9:
            raise ValueError("variance components must sum to at most 1")
        for name in ("heritability_additive", "heritability_epistatic",
                     "confounder_variance"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.n_causal < 0 or self.n_epistatic_pairs < 0:
            raise ValueError("causal counts must be non-negative")
        self._rng = np.random.default_rng(self.seed)

    # ------------------------------------------------------------------
    @staticmethod
    def _standardize(x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        std = x.std()
        if std <= 0:
            return np.zeros_like(x)
        return (x - x.mean()) / std

    def simulate(self, genotypes: np.ndarray,
                 confounders: np.ndarray | None = None) -> np.ndarray:
        """Simulate one standardized quantitative phenotype.

        Parameters
        ----------
        genotypes:
            ``n × ns`` 0/1/2 matrix.
        confounders:
            Optional ``n × c`` covariate matrix contributing
            ``confounder_variance`` of the variance.

        Returns
        -------
        numpy.ndarray
            Length-``n`` phenotype with zero mean and unit variance.
        """
        g = np.asarray(genotypes, dtype=np.float64)
        n, ns = g.shape
        rng = self._rng

        n_causal = min(self.n_causal, ns)
        causal = rng.choice(ns, size=n_causal, replace=False) if n_causal else np.array([], dtype=int)
        self.causal_snps_ = causal

        additive = np.zeros(n)
        if n_causal:
            betas = rng.standard_normal(n_causal)
            g_std = g[:, causal] - g[:, causal].mean(axis=0, keepdims=True)
            additive = g_std @ betas

        epistatic = np.zeros(n)
        n_pairs = self.n_epistatic_pairs if ns >= 2 else 0
        pairs = np.empty((0, 2), dtype=int)
        if n_pairs:
            pairs = rng.choice(ns, size=(n_pairs, 2))
            # avoid self-interaction pairs
            same = pairs[:, 0] == pairs[:, 1]
            pairs[same, 1] = (pairs[same, 1] + 1) % ns
            gammas = rng.standard_normal(n_pairs)
            g_centered = g - g.mean(axis=0, keepdims=True)
            inter = g_centered[:, pairs[:, 0]] * g_centered[:, pairs[:, 1]]
            epistatic = inter @ gammas
        self.epistatic_pairs_ = pairs

        conf = np.zeros(n)
        conf_var = self.confounder_variance
        if confounders is not None and confounders.size and conf_var > 0:
            c = np.asarray(confounders, dtype=np.float64)
            weights = rng.standard_normal(c.shape[1])
            conf = (c - c.mean(axis=0, keepdims=True)) @ weights
        else:
            conf_var = 0.0

        noise_var = max(1.0 - self.heritability_additive
                        - self.heritability_epistatic - conf_var, 0.0)
        noise = rng.standard_normal(n)

        y = (
            np.sqrt(self.heritability_additive) * self._standardize(additive)
            + np.sqrt(self.heritability_epistatic) * self._standardize(epistatic)
            + np.sqrt(conf_var) * self._standardize(conf)
            + np.sqrt(noise_var) * noise
        )
        return self._standardize(y)


def liability_to_binary(liability: np.ndarray, prevalence: float = 0.2) -> np.ndarray:
    """Convert a continuous liability into a 0/1 disease status.

    Individuals above the ``1 - prevalence`` quantile of the liability
    are cases — the standard liability-threshold model for complex
    diseases (asthma, hypertension, ... in the paper's cohort).
    """
    if not 0.0 < prevalence < 1.0:
        raise ValueError("prevalence must be in (0, 1)")
    liability = np.asarray(liability, dtype=np.float64)
    threshold = np.quantile(liability, 1.0 - prevalence)
    return (liability > threshold).astype(np.float64)


def simulate_phenotypes(genotypes: np.ndarray, n_phenotypes: int = 1,
                        confounders: np.ndarray | None = None,
                        n_causal: int = 50, n_epistatic_pairs: int = 25,
                        heritability_additive: float = 0.25,
                        heritability_epistatic: float = 0.45,
                        seed: int | None = None) -> np.ndarray:
    """Simulate an ``n × n_phenotypes`` matrix of standardized phenotypes.

    Each phenotype gets its own causal architecture (fresh causal SNPs
    and interaction pairs) but shares the variance-component settings —
    the multivariate (multi-phenotype) setting of Algorithm 1.
    """
    rng_seed = np.random.default_rng(seed)
    out = np.zeros((np.asarray(genotypes).shape[0], n_phenotypes))
    for k in range(n_phenotypes):
        model = PhenotypeModel(
            n_causal=n_causal,
            n_epistatic_pairs=n_epistatic_pairs,
            heritability_additive=heritability_additive,
            heritability_epistatic=heritability_epistatic,
            seed=int(rng_seed.integers(0, 2 ** 31 - 1)),
        )
        out[:, k] = model.simulate(genotypes, confounders)
    return out
