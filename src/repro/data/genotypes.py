"""Synthetic genotype matrices with allele-frequency and LD structure.

Genotypes are additive dosage codes 0/1/2 (number of minor alleles at a
biallelic SNP).  Two structural features matter for the paper's
experiments:

* **allele-frequency spectrum** — minor allele frequencies (MAF) are
  drawn from a Beta-like spectrum skewed toward rare variants, as in
  real SNP panels;
* **linkage disequilibrium (LD)** — neighbouring SNPs are correlated.
  The simulator generates haplotypes per LD block from a shared latent
  Gaussian with exponentially decaying correlation, then thresholds to
  alleles, which yields the familiar block-diagonal LD pattern that the
  paper's discussion of false positives (Sec. III) revolves around.

Optionally, a simple two-subpopulation structure can be injected (an
``F_ST``-like frequency divergence), providing the population-structure
confounding that multivariate methods are meant to absorb.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LDBlockConfig", "GenotypeSimulator", "simulate_genotypes"]


@dataclass(frozen=True)
class LDBlockConfig:
    """Linkage-disequilibrium block structure parameters.

    Parameters
    ----------
    block_size:
        Number of SNPs per LD block.
    decay:
        Correlation between adjacent SNPs within a block (``rho``);
        correlation between SNPs ``k`` apart decays as ``rho**k``.
    """

    block_size: int = 20
    decay: float = 0.7

    def __post_init__(self) -> None:
        if self.block_size <= 0:
            raise ValueError("block_size must be positive")
        if not 0.0 <= self.decay < 1.0:
            raise ValueError("decay must be in [0, 1)")


@dataclass
class GenotypeSimulator:
    """Simulator for 0/1/2 genotype matrices.

    Parameters
    ----------
    maf_low, maf_high:
        Range of minor allele frequencies; each SNP's MAF is sampled
        from a Beta(0.8, 3) distribution rescaled to this range, giving
        the rare-variant-heavy spectrum of SNP arrays.
    ld:
        LD block configuration; ``None`` generates independent SNPs.
    population_structure:
        When > 0, individuals are split into two subpopulations whose
        allele frequencies diverge by roughly this F_ST-like amount.
    seed:
        Seed of the underlying :class:`numpy.random.Generator`.
    """

    maf_low: float = 0.05
    maf_high: float = 0.5
    ld: LDBlockConfig | None = LDBlockConfig()
    population_structure: float = 0.0
    seed: int | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.maf_low <= self.maf_high <= 0.5:
            raise ValueError("require 0 < maf_low <= maf_high <= 0.5")
        if not 0.0 <= self.population_structure < 1.0:
            raise ValueError("population_structure must be in [0, 1)")
        self._rng = np.random.default_rng(self.seed)

    # ------------------------------------------------------------------
    def sample_mafs(self, n_snps: int) -> np.ndarray:
        """Draw minor allele frequencies for ``n_snps`` SNPs."""
        raw = self._rng.beta(0.8, 3.0, size=n_snps)
        return self.maf_low + raw * (self.maf_high - self.maf_low)

    def _haplotypes(self, n_haplotypes: int, mafs: np.ndarray) -> np.ndarray:
        """Sample 0/1 haplotypes with within-block LD."""
        n_snps = mafs.shape[0]
        if self.ld is None:
            u = self._rng.random((n_haplotypes, n_snps))
            return (u < mafs[None, :]).astype(np.int8)

        block = self.ld.block_size
        rho = self.ld.decay
        haplos = np.zeros((n_haplotypes, n_snps), dtype=np.int8)
        # latent AR(1) Gaussian per block, thresholded at the MAF quantile
        from scipy.stats import norm

        thresholds = norm.ppf(mafs)
        for start in range(0, n_snps, block):
            stop = min(start + block, n_snps)
            width = stop - start
            z = np.empty((n_haplotypes, width))
            z[:, 0] = self._rng.standard_normal(n_haplotypes)
            for k in range(1, width):
                innov = self._rng.standard_normal(n_haplotypes)
                z[:, k] = rho * z[:, k - 1] + np.sqrt(1.0 - rho ** 2) * innov
            haplos[:, start:stop] = (z < thresholds[None, start:stop]).astype(np.int8)
        return haplos

    def simulate(self, n_individuals: int, n_snps: int) -> np.ndarray:
        """Return an ``n_individuals × n_snps`` int8 genotype matrix (0/1/2)."""
        if n_individuals <= 0 or n_snps <= 0:
            raise ValueError("dimensions must be positive")
        mafs = self.sample_mafs(n_snps)

        if self.population_structure > 0.0:
            # split individuals into two subpopulations with diverged MAFs
            half = n_individuals // 2
            fst = self.population_structure
            shift = self._rng.normal(0.0, np.sqrt(fst * mafs * (1 - mafs)))
            mafs_a = np.clip(mafs + shift, 0.01, 0.99)
            mafs_b = np.clip(mafs - shift, 0.01, 0.99)
            g_a = self._diploid(half, mafs_a)
            g_b = self._diploid(n_individuals - half, mafs_b)
            genotypes = np.vstack([g_a, g_b])
            perm = self._rng.permutation(n_individuals)
            return genotypes[perm]

        return self._diploid(n_individuals, mafs)

    def _diploid(self, n_individuals: int, mafs: np.ndarray) -> np.ndarray:
        h1 = self._haplotypes(n_individuals, mafs)
        h2 = self._haplotypes(n_individuals, mafs)
        return (h1 + h2).astype(np.int8)


def simulate_genotypes(n_individuals: int, n_snps: int, seed: int | None = None,
                       ld_block_size: int = 20, ld_decay: float = 0.7,
                       maf_low: float = 0.05, maf_high: float = 0.5,
                       population_structure: float = 0.0) -> np.ndarray:
    """Convenience wrapper around :class:`GenotypeSimulator`."""
    sim = GenotypeSimulator(
        maf_low=maf_low,
        maf_high=maf_high,
        ld=LDBlockConfig(block_size=ld_block_size, decay=ld_decay)
        if ld_block_size > 1 else None,
        population_structure=population_structure,
        seed=seed,
    )
    return sim.simulate(n_individuals, n_snps)


def allele_frequencies(genotypes: np.ndarray) -> np.ndarray:
    """Empirical allele frequency of each SNP from a 0/1/2 matrix."""
    g = np.asarray(genotypes, dtype=np.float64)
    return g.mean(axis=0) / 2.0


def ld_matrix(genotypes: np.ndarray, max_snps: int | None = None) -> np.ndarray:
    """Pairwise LD (squared Pearson correlation, r²) between SNPs."""
    g = np.asarray(genotypes, dtype=np.float64)
    if max_snps is not None:
        g = g[:, :max_snps]
    g = g - g.mean(axis=0, keepdims=True)
    std = g.std(axis=0, keepdims=True)
    std[std == 0] = 1.0
    g = g / std
    r = (g.T @ g) / g.shape[0]
    return r ** 2
