"""Dataset containers and train/test splitting.

``GWASDataset`` bundles the genotype matrix, the phenotype panel, the
confounder covariates and the phenotype names, and provides the 80/20
train/test split used throughout the paper's accuracy experiments
(Sec. VII-B: "80% of the data is used for training and 20% is withheld
for testing").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["GWASDataset", "TrainTestSplit"]


@dataclass
class GWASDataset:
    """A GWAS cohort: genotypes, phenotypes and confounders.

    Attributes
    ----------
    genotypes:
        ``n × ns`` matrix of 0/1/2 dosages (int8 or wider).
    phenotypes:
        ``n × nph`` matrix of phenotype values (float64).  Binary
        disease phenotypes are stored as 0.0/1.0.
    confounders:
        Optional ``n × c`` covariate matrix (float64).
    phenotype_names:
        Names of the phenotype columns.
    name:
        Free-form dataset name (e.g. ``"ukb-like"``, ``"msprime-like"``).
    """

    genotypes: np.ndarray
    phenotypes: np.ndarray
    confounders: np.ndarray | None = None
    phenotype_names: list[str] = field(default_factory=list)
    name: str = "synthetic"

    def __post_init__(self) -> None:
        self.genotypes = np.asarray(self.genotypes)
        self.phenotypes = np.asarray(self.phenotypes, dtype=np.float64)
        if self.phenotypes.ndim == 1:
            self.phenotypes = self.phenotypes[:, None]
        if self.genotypes.ndim != 2 or self.phenotypes.ndim != 2:
            raise ValueError("genotypes and phenotypes must be 2D")
        if self.genotypes.shape[0] != self.phenotypes.shape[0]:
            raise ValueError("genotypes and phenotypes must have the same number of rows")
        if self.confounders is not None:
            self.confounders = np.asarray(self.confounders, dtype=np.float64)
            if self.confounders.shape[0] != self.n_individuals:
                raise ValueError("confounders must have one row per individual")
        if not self.phenotype_names:
            self.phenotype_names = [f"phenotype_{k}" for k in range(self.n_phenotypes)]
        if len(self.phenotype_names) != self.n_phenotypes:
            raise ValueError("phenotype_names must match the number of phenotype columns")

    # ------------------------------------------------------------------
    @property
    def n_individuals(self) -> int:
        return self.genotypes.shape[0]

    @property
    def n_snps(self) -> int:
        return self.genotypes.shape[1]

    @property
    def n_phenotypes(self) -> int:
        return self.phenotypes.shape[1]

    @property
    def n_confounders(self) -> int:
        return 0 if self.confounders is None else self.confounders.shape[1]

    def phenotype(self, name: str) -> np.ndarray:
        """Return one phenotype column by name."""
        try:
            idx = self.phenotype_names.index(name)
        except ValueError as exc:
            raise KeyError(f"unknown phenotype {name!r}; "
                           f"available: {self.phenotype_names}") from exc
        return self.phenotypes[:, idx]

    def design_matrix(self) -> np.ndarray:
        """Genotypes and confounders concatenated (the RR design matrix X)."""
        if self.confounders is None or self.confounders.shape[1] == 0:
            return np.asarray(self.genotypes, dtype=np.float64)
        return np.hstack([
            np.asarray(self.genotypes, dtype=np.float64), self.confounders
        ])

    def integer_column_mask(self) -> np.ndarray:
        """Boolean mask over design-matrix columns marking integer (SNP) columns."""
        mask = np.zeros(self.n_snps + self.n_confounders, dtype=bool)
        mask[: self.n_snps] = True
        return mask

    # ------------------------------------------------------------------
    def split(self, train_fraction: float = 0.8, seed: int | None = 0) -> "TrainTestSplit":
        """Random train/test split (default 80/20 as in the paper)."""
        if not 0.0 < train_fraction < 1.0:
            raise ValueError("train_fraction must be in (0, 1)")
        n = self.n_individuals
        rng = np.random.default_rng(seed)
        perm = rng.permutation(n)
        n_train = int(round(train_fraction * n))
        n_train = min(max(n_train, 1), n - 1)
        train_idx = np.sort(perm[:n_train])
        test_idx = np.sort(perm[n_train:])
        return TrainTestSplit(dataset=self, train_indices=train_idx,
                              test_indices=test_idx)

    def subset(self, indices: np.ndarray, name: str | None = None) -> "GWASDataset":
        """Row subset of the dataset."""
        indices = np.asarray(indices)
        return GWASDataset(
            genotypes=self.genotypes[indices],
            phenotypes=self.phenotypes[indices],
            confounders=None if self.confounders is None else self.confounders[indices],
            phenotype_names=list(self.phenotype_names),
            name=name or self.name,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GWASDataset({self.name!r}, n={self.n_individuals}, "
            f"snps={self.n_snps}, phenotypes={self.n_phenotypes}, "
            f"confounders={self.n_confounders})"
        )


@dataclass
class TrainTestSplit:
    """A train/test partition of a :class:`GWASDataset`."""

    dataset: GWASDataset
    train_indices: np.ndarray
    test_indices: np.ndarray

    def __post_init__(self) -> None:
        self.train_indices = np.asarray(self.train_indices)
        self.test_indices = np.asarray(self.test_indices)
        overlap = np.intersect1d(self.train_indices, self.test_indices)
        if overlap.size:
            raise ValueError("train and test indices overlap")

    @property
    def train(self) -> GWASDataset:
        return self.dataset.subset(self.train_indices, name=f"{self.dataset.name}-train")

    @property
    def test(self) -> GWASDataset:
        return self.dataset.subset(self.test_indices, name=f"{self.dataset.name}-test")

    @property
    def n_train(self) -> int:
        return int(self.train_indices.size)

    @property
    def n_test(self) -> int:
        return int(self.test_indices.size)
