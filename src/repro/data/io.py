"""Dataset and fitted-model (de)serialization.

Datasets are stored as a single compressed ``.npz`` archive so that the
expensive cohort generation (coalescent simulation in particular) can
be cached between benchmark runs.

Fitted-model artifacts (:class:`~repro.gwas.model.FittedModel`) get
thin :func:`save_model` / :func:`load_model` wrappers here so every
persistent object of the pipeline — cohorts in, models out — is
reachable from one I/O module; the artifact format itself (native
mixed-precision tile bytes) lives in :mod:`repro.tiles.serialize`.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.data.dataset import GWASDataset

__all__ = ["save_dataset", "load_dataset", "save_model", "load_model"]


def save_dataset(dataset: GWASDataset, path: str | Path) -> Path:
    """Write a :class:`GWASDataset` to ``path`` (``.npz`` appended if missing)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    meta = {
        "name": dataset.name,
        "phenotype_names": dataset.phenotype_names,
        "has_confounders": dataset.confounders is not None,
    }
    arrays = {
        "genotypes": dataset.genotypes,
        "phenotypes": dataset.phenotypes,
        "meta_json": np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
    }
    if dataset.confounders is not None:
        arrays["confounders"] = dataset.confounders
    np.savez_compressed(path, **arrays)
    return path


def load_dataset(path: str | Path) -> GWASDataset:
    """Load a :class:`GWASDataset` written by :func:`save_dataset`."""
    path = Path(path)
    if not path.exists() and path.with_suffix(".npz").exists():
        path = path.with_suffix(".npz")
    with np.load(path, allow_pickle=False) as archive:
        meta = json.loads(bytes(archive["meta_json"].tobytes()).decode("utf-8"))
        genotypes = archive["genotypes"]
        phenotypes = archive["phenotypes"]
        confounders = archive["confounders"] if meta.get("has_confounders") else None
    return GWASDataset(
        genotypes=genotypes,
        phenotypes=phenotypes,
        confounders=confounders,
        phenotype_names=list(meta.get("phenotype_names", [])),
        name=meta.get("name", "loaded"),
    )


def save_model(model, path: str | Path, compress: bool | None = None) -> Path:
    """Write a :class:`~repro.gwas.model.FittedModel` artifact to ``path``.

    Delegates to :meth:`FittedModel.save` — each factor tile is stored
    in its native precision bytes, and the loaded model predicts
    bitwise identically to the exporting session.
    """
    from repro.gwas.model import FittedModel

    if not isinstance(model, FittedModel):
        raise TypeError("save_model() expects a FittedModel artifact")
    return model.save(path, compress=compress)


def load_model(path: str | Path):
    """Load a :class:`~repro.gwas.model.FittedModel` artifact."""
    from repro.gwas.model import FittedModel

    return FittedModel.load(path)
