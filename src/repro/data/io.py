"""Dataset (de)serialization.

Datasets are stored as a single compressed ``.npz`` archive so that the
expensive cohort generation (coalescent simulation in particular) can
be cached between benchmark runs.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.data.dataset import GWASDataset

__all__ = ["save_dataset", "load_dataset"]


def save_dataset(dataset: GWASDataset, path: str | Path) -> Path:
    """Write a :class:`GWASDataset` to ``path`` (``.npz`` appended if missing)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    meta = {
        "name": dataset.name,
        "phenotype_names": dataset.phenotype_names,
        "has_confounders": dataset.confounders is not None,
    }
    arrays = {
        "genotypes": dataset.genotypes,
        "phenotypes": dataset.phenotypes,
        "meta_json": np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
    }
    if dataset.confounders is not None:
        arrays["confounders"] = dataset.confounders
    np.savez_compressed(path, **arrays)
    return path


def load_dataset(path: str | Path) -> GWASDataset:
    """Load a :class:`GWASDataset` written by :func:`save_dataset`."""
    path = Path(path)
    if not path.exists() and path.with_suffix(".npz").exists():
        path = path.with_suffix(".npz")
    with np.load(path, allow_pickle=False) as archive:
        meta = json.loads(bytes(archive["meta_json"].tobytes()).decode("utf-8"))
        genotypes = archive["genotypes"]
        phenotypes = archive["phenotypes"]
        confounders = archive["confounders"] if meta.get("has_confounders") else None
    return GWASDataset(
        genotypes=genotypes,
        phenotypes=phenotypes,
        confounders=confounders,
        phenotype_names=list(meta.get("phenotype_names", [])),
        name=meta.get("name", "loaded"),
    )
