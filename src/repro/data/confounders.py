"""Confounder covariates (age, sex, genetic principal components).

GWAS design matrices mix integer-coded SNPs with a small number of
real-valued covariates whose inclusion prevents spurious associations
(Sec. V-A of the paper).  This module simulates the standard set —
age, sex, assessment-centre index, and the leading principal components
of the genotype matrix (which capture population structure) — in the
floating-point encoding that forces the mixed INT8/FP32 handling of the
paper's SYRK.
"""

from __future__ import annotations

import numpy as np

__all__ = ["simulate_confounders", "genotype_principal_components"]


def genotype_principal_components(genotypes: np.ndarray, n_components: int = 4) -> np.ndarray:
    """Leading principal components of the (standardized) genotype matrix.

    Computed from the SVD of the column-standardized genotypes; used
    both as confounders and as a population-structure diagnostic.
    """
    g = np.asarray(genotypes, dtype=np.float64)
    if g.ndim != 2:
        raise ValueError("genotypes must be 2D")
    n_components = min(n_components, min(g.shape))
    g = g - g.mean(axis=0, keepdims=True)
    std = g.std(axis=0, keepdims=True)
    std[std == 0] = 1.0
    g = g / std
    # economy SVD on the thinner side
    u, s, _ = np.linalg.svd(g, full_matrices=False)
    pcs = u[:, :n_components] * s[:n_components]
    return pcs


def simulate_confounders(n_individuals: int, genotypes: np.ndarray | None = None,
                         n_principal_components: int = 2,
                         seed: int | None = None) -> np.ndarray:
    """Simulate a confounder matrix (float64).

    Columns: standardized age, sex (0/1 centered), assessment-centre
    index (categorical, standardized), and optionally the leading
    genotype principal components.

    Parameters
    ----------
    n_individuals:
        Number of rows.
    genotypes:
        When given, ``n_principal_components`` genotype PCs are appended.
    """
    if n_individuals <= 0:
        raise ValueError("n_individuals must be positive")
    rng = np.random.default_rng(seed)

    # UK BioBank recruited participants aged 40-69
    age = rng.uniform(40.0, 69.0, size=n_individuals)
    age = (age - age.mean()) / age.std()

    sex = rng.integers(0, 2, size=n_individuals).astype(np.float64)
    sex = sex - sex.mean()

    centre = rng.integers(0, 22, size=n_individuals).astype(np.float64)
    centre = (centre - centre.mean()) / max(centre.std(), 1e-12)

    cols = [age, sex, centre]
    if genotypes is not None and n_principal_components > 0:
        pcs = genotype_principal_components(genotypes, n_principal_components)
        for k in range(pcs.shape[1]):
            col = pcs[:, k]
            std = col.std()
            cols.append(col / std if std > 0 else col)

    return np.column_stack(cols)
