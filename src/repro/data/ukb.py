"""UK-BioBank-like synthetic cohort.

The paper studies five common diseases from a UK BioBank subset of
305,880 patients × 43,333 SNPs: hypertension, asthma, osteoarthritis,
allergic rhinitis and depression, and reports KRR strongly
outperforming RR on all of them (Table I, Fig. 5).  The real data are
access-restricted, so :func:`make_ukb_like_cohort` builds a synthetic
cohort with the same *shape*: 0/1/2 genotypes with LD structure,
age/sex/centre/PC confounders, and one liability-threshold disease
phenotype per condition whose genetic architecture contains a large
epistatic component — the property that separates KRR from RR.

Disease prevalences are set to the approximate UK BioBank field
prevalences so that case/control imbalance is realistic.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.data.confounders import simulate_confounders
from repro.data.dataset import GWASDataset
from repro.data.genotypes import GenotypeSimulator, LDBlockConfig
from repro.data.phenotypes import PhenotypeModel, liability_to_binary

__all__ = ["DISEASES", "UKBLikeCohort", "make_ukb_like_cohort"]

#: The five diseases studied in the paper with approximate prevalences.
DISEASES: dict[str, float] = {
    "Hypertension": 0.27,
    "Asthma": 0.12,
    "Osteoarthritis": 0.08,
    "Allergic Rhinitis": 0.06,
    "Depression": 0.06,
}


@dataclass(frozen=True)
class UKBLikeCohort:
    """Configuration of the synthetic UK-BioBank-like cohort.

    Parameters
    ----------
    n_individuals, n_snps:
        Cohort dimensions.  The paper's 305,880 × 43,333 does not fit a
        CI machine; defaults give a faithful small-scale cohort and the
        benchmarks scale them per the ``--scale`` preset.
    diseases:
        Disease-name → prevalence mapping (defaults to the paper's five).
    n_causal, n_epistatic_pairs:
        Genetic architecture per disease.
    heritability_additive, heritability_epistatic:
        Variance components; the epistatic share dominates so KRR has a
        signal RR cannot capture.  The small additive share caps the
        linear-RR Pearson correlation near the 0.2–0.3 range the paper
        reports, while the epistatic share gives KRR headroom.
    maf_low, maf_high:
        Minor-allele-frequency range; common variants by default so the
        interaction terms are well populated at small cohort sizes.
    binary_phenotypes:
        When True (default) phenotypes are 0/1 disease statuses via the
        liability-threshold model; when False the continuous liabilities
        themselves are returned (useful for MSPE-style experiments with
        more resolution).
    seed:
        RNG seed (controls genotypes, confounders and phenotypes).
    """

    n_individuals: int = 800
    n_snps: int = 64
    diseases: tuple[tuple[str, float], ...] = tuple(DISEASES.items())
    n_causal: int = 16
    n_epistatic_pairs: int = 24
    heritability_additive: float = 0.08
    heritability_epistatic: float = 0.77
    confounder_variance: float = 0.05
    ld_block_size: int = 16
    ld_decay: float = 0.6
    maf_low: float = 0.20
    maf_high: float = 0.5
    binary_phenotypes: bool = False
    seed: int = 42


def make_ukb_like_cohort(config: UKBLikeCohort | None = None, **overrides) -> GWASDataset:
    """Build the synthetic UK-BioBank-like cohort as a :class:`GWASDataset`.

    Keyword overrides are applied on top of the given (or default)
    :class:`UKBLikeCohort` configuration, e.g.
    ``make_ukb_like_cohort(n_individuals=2000, seed=1)``.
    """
    if config is None:
        config = UKBLikeCohort()
    if overrides:
        config = dataclasses.replace(config, **overrides)

    rng = np.random.default_rng(config.seed)

    genotype_sim = GenotypeSimulator(
        maf_low=config.maf_low,
        maf_high=config.maf_high,
        ld=LDBlockConfig(block_size=config.ld_block_size, decay=config.ld_decay),
        seed=int(rng.integers(0, 2 ** 31 - 1)),
    )
    genotypes = genotype_sim.simulate(config.n_individuals, config.n_snps)

    confounders = simulate_confounders(
        config.n_individuals, genotypes=genotypes, n_principal_components=2,
        seed=int(rng.integers(0, 2 ** 31 - 1)),
    )

    phenotype_cols: list[np.ndarray] = []
    names: list[str] = []
    for disease, prevalence in config.diseases:
        model = PhenotypeModel(
            n_causal=config.n_causal,
            n_epistatic_pairs=config.n_epistatic_pairs,
            heritability_additive=config.heritability_additive,
            heritability_epistatic=config.heritability_epistatic,
            confounder_variance=config.confounder_variance,
            seed=int(rng.integers(0, 2 ** 31 - 1)),
        )
        liability = model.simulate(genotypes, confounders)
        if config.binary_phenotypes:
            phenotype_cols.append(liability_to_binary(liability, prevalence))
        else:
            phenotype_cols.append(liability)
        names.append(disease)

    return GWASDataset(
        genotypes=genotypes,
        phenotypes=np.column_stack(phenotype_cols),
        confounders=confounders,
        phenotype_names=names,
        name="ukb-like",
    )
