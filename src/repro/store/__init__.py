"""repro.store — out-of-core tile storage with budgeted residency.

The paper's 305k-patient runs work because the kernel matrix is a
precision-adapted tile mosaic — and past a point the *mosaic itself*
no longer fits in memory.  This package breaks that ceiling:

* :class:`TileStore` backs any :class:`~repro.tiles.matrix.TileMatrix`
  with native-precision spill segments on disk (bitwise round-trips);
* :class:`~repro.store.stats.ResidencyManager` enforces a byte budget
  with precision-aware LRU eviction and pin/unpin refcounts;
* :class:`StoreSchedulerHooks` wires the task runtime in: input tiles
  are prefetched when a task becomes ready, pinned while it runs, and
  released on completion;
* :class:`~repro.store.stats.StoreStats` reports spills/reloads and the
  peak resident bytes the out-of-core contract is asserted against.

Attach via ``TileMatrix.attach_store`` or, end to end, through
``KRRConfig(store_budget_bytes=..., store_dir=...)`` / the
``REPRO_STORE_BUDGET`` environment variable.
"""

from repro.resilience.errors import StoreCorruptionError
from repro.store.hooks import StoreSchedulerHooks
from repro.store.stats import ResidencyManager, StoreStats
from repro.store.store import (
    STORE_BUDGET_ENV,
    STORE_DIR_ENV,
    StoreBinding,
    StoreVerifyReport,
    TileStore,
    parse_bytes,
    resolve_store_budget,
)

__all__ = [
    "TileStore",
    "StoreBinding",
    "StoreCorruptionError",
    "StoreVerifyReport",
    "ResidencyManager",
    "StoreStats",
    "StoreSchedulerHooks",
    "STORE_BUDGET_ENV",
    "STORE_DIR_ENV",
    "parse_bytes",
    "resolve_store_budget",
]
