"""Out-of-core tile store: budgeted residency with spill/reload.

``TileStore`` backs :class:`~repro.tiles.matrix.TileMatrix` objects with
**spill segments** on disk: when the resident tile bytes of all bound
matrices exceed ``budget_bytes``, least-recently-used unpinned tiles are
encoded to their *native storage precision* bytes (the same fp64/32/16,
bf16 and 1-byte FP8 codecs the fitted-model artifacts use, see
:mod:`repro.tiles.serialize`) and written to a memory-mapped segment
file; a later access faults the tile back in bit for bit.  Because tile
payloads are always quantized to their precision's value grid, the
spill round-trip is **exact** — an out-of-core run produces bitwise the
same results as a fully-resident one, for any budget.

Layout on disk: one append-mostly segment file per bound matrix plus an
in-memory offset index ``{(i, j): slot}``.  A re-spill of a tile whose
encoded size is unchanged overwrites its slot in place (the common
spill/reload/spill cycle does not grow the file); slots shared between
matrices (``shallow_copy``) are immutable and superseded by appends.

Concurrency contract (the part that makes threaded DAG execution safe):

* every grid mutation of a store-backed matrix — fault-in, ``set_tile``,
  eviction — happens under the **store lock**, then the matrix grid
  lock (always in that order);
* eviction never selects a tile pinned by an in-flight task
  (:class:`~repro.store.stats.ResidencyManager` refcounts pins);
* readers that race an eviction simply fault the tile back in — the
  reload is bitwise, so correctness never depends on pin timing; pins
  exist to keep the working set resident, not to guard values.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import threading
import weakref
import zlib
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.precision.formats import Precision
from repro.resilience.errors import StoreCorruptionError
from repro.resilience.faults import (
    SITE_CORRUPT_READ,
    SITE_SEGMENT_READ,
    SITE_SEGMENT_WRITE,
    SITE_SLOW_READ,
    active_plan,
)
from repro.store.stats import ResidencyManager, StoreStats
from repro.tiles.serialize import decode_payload, encode_payload
from repro.tiles.tile import Tile

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.tiles.matrix import TileMatrix

__all__ = [
    "TileStore",
    "StoreBinding",
    "StoreCorruptionError",
    "StoreVerifyReport",
    "TileDep",
    "STORE_BUDGET_ENV",
    "STORE_DIR_ENV",
    "resolve_store_budget",
]

#: Environment override of the residency budget (bytes; ``k``/``m``/``g``
#: suffixes accepted).  CI's tier-1 store variant sets this to force the
#: whole suite through the spill/reload paths.
STORE_BUDGET_ENV = "REPRO_STORE_BUDGET"
#: Optional environment override of the spill directory.
STORE_DIR_ENV = "REPRO_STORE_DIR"

_SUFFIXES = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30}

#: A task's declared tile dependency: ``(binding, (i, j))``.
TileDep = tuple["StoreBinding", tuple[int, int]]


def parse_bytes(text: str) -> int:
    """Parse ``"1048576"`` / ``"64m"`` / ``"2G"`` into a byte count."""
    text = text.strip().lower()
    if not text:
        raise ValueError("empty byte size")
    scale = 1
    if text[-1] in _SUFFIXES:
        scale = _SUFFIXES[text[-1]]
        text = text[:-1]
    return int(float(text) * scale)


def resolve_store_budget(budget: int | None = None) -> int | None:
    """Resolve a store budget: explicit value, else ``REPRO_STORE_BUDGET``.

    Returns ``None`` when neither is set (no store is created).
    """
    if budget is not None:
        return int(budget)
    env = os.environ.get(STORE_BUDGET_ENV)
    if env:
        return parse_bytes(env)
    return None


# ----------------------------------------------------------------------
# segment files
# ----------------------------------------------------------------------
class _Segment:
    """One spill file: append-mostly writes, memory-mapped reads."""

    def __init__(self, path: Path) -> None:
        self.path = path
        self._file = None
        self._mmap: np.memmap | None = None
        self.size = 0

    def _ensure_file(self):
        if self._file is None:
            self._file = open(self.path, "w+b")
        return self._file

    def write(self, data: bytes, offset: int | None = None) -> int:
        """Write ``data`` (at ``offset``, or appended); returns its offset."""
        plan = active_plan()
        if plan is not None:
            # fires before any state mutation so a retried write is clean
            plan.inject(SITE_SEGMENT_WRITE, str(self.path))
        f = self._ensure_file()
        if offset is None:
            offset = self.size
            self.size += len(data)
        f.seek(offset)
        f.write(data)
        f.flush()
        return offset

    def read(self, offset: int, length: int) -> bytes:
        """Read a slot through the (lazily refreshed) memory map.

        May return *short* bytes when the file is truncated on disk —
        the caller's integrity check turns that into a typed corruption
        error (mapping past EOF would be a SIGBUS instead).  Missing or
        unreadable files surface as ``OSError``.
        """
        plan = active_plan()
        if plan is not None:
            plan.inject(SITE_SLOW_READ, str(self.path))
            plan.inject(SITE_SEGMENT_READ, str(self.path))
        if self._file is not None:
            self._file.flush()
        size = os.path.getsize(self.path)
        if size < offset + length:
            return b""  # truncated segment: short read, caller verifies
        if self._mmap is None or self._mmap.shape[0] < offset + length:
            self._mmap = np.memmap(self.path, dtype=np.uint8, mode="r")
        buf = bytes(self._mmap[offset:offset + length])
        if plan is not None:
            buf = plan.corrupt(SITE_CORRUPT_READ, buf, str(self.path))
        return buf

    def close(self) -> None:
        self._mmap = None
        if self._file is not None:
            self._file.close()
            self._file = None


@dataclass
class _Slot:
    """Index record of one spilled tile in a segment."""

    segment: _Segment
    offset: int
    length: int
    dtype: str
    shape: tuple[int, ...]
    precision: Precision
    #: CRC32 of the slot's bytes, verified on every reload/prefetch.
    crc: int = 0
    #: Bindings referencing this slot; in-place overwrite requires 1.
    owners: int = 1


@dataclass(frozen=True)
class StoreVerifyReport:
    """Outcome of a :meth:`TileStore.verify` scrub."""

    slots_checked: int = 0
    recovered: int = 0
    errors: tuple[StoreCorruptionError, ...] = field(default_factory=tuple)

    @property
    def clean(self) -> bool:
        return not self.errors


# ----------------------------------------------------------------------
# per-matrix binding
# ----------------------------------------------------------------------
class StoreBinding:
    """The store-side state of one bound :class:`TileMatrix`.

    Holds the spill index and performs the fault/spill/set moves for
    its matrix.  All entry points take the store lock, then (where grid
    mutation is needed) the matrix grid lock — the single lock order of
    the subsystem.
    """

    def __init__(self, store: "TileStore", bid: int,
                 matrix: "TileMatrix") -> None:
        self.store = store
        self.bid = bid
        self.matrix = weakref.ref(matrix)
        self.index: dict[tuple[int, int], _Slot] = {}
        #: Keys whose resident payload is bit-identical to their slot
        #: (eviction of a clean tile is a free drop, no write).
        self.clean: set[tuple[int, int]] = set()
        self._segment: _Segment | None = None

    # -- segment helpers ------------------------------------------------
    def _own_segment(self) -> _Segment:
        if self._segment is None:
            self._segment = self.store._new_segment(self.bid)
        return self._segment

    def _write_slot(self, key: tuple[int, int], raw: np.ndarray,
                    precision: Precision) -> _Slot:
        data = raw.tobytes()
        crc = zlib.crc32(data)
        old = self.index.get(key)
        offset = None
        segment = self._own_segment()
        if (old is not None and old.owners == 1
                and old.segment is segment and old.length == len(data)):
            offset = old.offset  # in-place reuse: no file growth
        elif old is not None:
            old.owners -= 1
        try:
            offset = segment.write(data, offset)
        except OSError:
            # one immediate retry absorbs transient I/O hiccups; a
            # second failure is a real storage problem and propagates
            self.store.residency.stats.io_retries += 1
            offset = segment.write(data, offset)
        slot = _Slot(segment=segment, offset=offset, length=len(data),
                     dtype=raw.dtype.str, shape=tuple(raw.shape),
                     precision=precision, crc=crc)
        self.index[key] = slot
        return slot

    def _describe(self) -> str:
        m = self.matrix()
        if m is None:
            return f"store binding {self.bid} (matrix collected)"
        layout = getattr(m, "layout", None)
        if layout is not None:
            return (f"store binding {self.bid} "
                    f"({layout.rows}x{layout.cols} matrix)")
        return f"store binding {self.bid}"

    def _corruption(self, key: tuple[int, int], slot: _Slot,
                    reason: str) -> StoreCorruptionError:
        self.store.residency.stats.crc_failures += 1
        return StoreCorruptionError(
            matrix=self._describe(), coords=key, precision=slot.precision,
            path=slot.segment.path, reason=reason)

    def _read_slot(self, slot: _Slot,
                   key: tuple[int, int] = (-1, -1)) -> np.ndarray:
        """Read and *verify* a slot's bytes (one transient-fault retry).

        Every reload path — demand fault-in, prefetch, detach, verify —
        funnels through here, so no corrupted byte ever reaches a tile
        payload: length and CRC32 are checked against the offset index
        and a mismatch raises a typed :class:`StoreCorruptionError`
        naming the tile instead of an opaque reshape crash.
        """
        last_reason = "unreadable slot"
        for attempt in range(2):
            if attempt:
                self.store.residency.stats.io_retries += 1
            try:
                buf = slot.segment.read(slot.offset, slot.length)
            except OSError as exc:
                last_reason = f"segment read failed: {exc}"
                continue
            if len(buf) != slot.length:
                last_reason = (f"truncated slot: got {len(buf)} of "
                               f"{slot.length} bytes")
                continue
            if zlib.crc32(buf) != slot.crc:
                last_reason = "checksum mismatch (corrupted bytes)"
                continue
            return np.frombuffer(buf, dtype=slot.dtype).reshape(slot.shape)
        raise self._corruption(key, slot, last_reason)

    def _decode_slot(self, slot: _Slot, key: tuple[int, int]) -> np.ndarray:
        raw = self._read_slot(slot, key)
        try:
            return decode_payload(raw, slot.precision)
        except Exception as exc:
            raise self._corruption(
                key, slot, f"undecodable payload: {exc}") from exc

    def note_use(self, key: tuple[int, int]) -> None:
        """Recency bump for a resident read (lock-free, see stats.py)."""
        self.store.residency.note_use((self.bid, key))

    # -- fault-in -------------------------------------------------------
    def load(self, key: tuple[int, int],
             materialize_zeros: bool = True) -> Tile | None:
        """Return tile ``key``, faulting it in from its slot if spilled.

        Unwritten tiles materialize as zeros (matching the plain
        :class:`TileMatrix` semantics) unless ``materialize_zeros`` is
        False, in which case ``None`` is returned.
        """
        store = self.store
        with store._lock:
            return self._load_locked(key, materialize_zeros)

    def _load_locked(self, key: tuple[int, int],
                     materialize_zeros: bool) -> Tile | None:
        store = self.store
        m = self.matrix()
        if m is None:
            return None
        with m._grid_lock:
            tile = m._tiles.get(key)
        if tile is not None:
            store.residency.touch((self.bid, key))
            return tile
        slot = self.index.get(key)
        stats = store.residency.stats
        if slot is None:
            if not materialize_zeros:
                return None
            shape = m.layout.tile_shape(*key)
            tile = Tile(np.zeros(shape), precision=m.default_precision,
                        coords=key)
        else:
            payload = self._decode_slot(slot, key)
            tile = Tile(payload, precision=slot.precision, coords=key)
            stats.reloads += 1
            stats.bytes_reloaded += slot.length
        store._evict_to_fit(tile.nbytes, exclude=(self.bid, key))
        with m._grid_lock:
            m._tiles[key] = tile
        store.residency.add((self.bid, key), tile.nbytes)
        if slot is not None:
            self.clean.add(key)  # resident bits == slot bits
        else:
            self.clean.discard(key)
        return tile

    # -- writes ---------------------------------------------------------
    def set(self, key: tuple[int, int], payload: np.ndarray,
            precision: Precision | None) -> None:
        """Store-side ``set_tile``: replace the tile under the store lock."""
        store = self.store
        with store._lock:
            m = self.matrix()
            if m is None:
                return
            if precision is None:
                with m._grid_lock:
                    cur = m._tiles.get(key)
                if cur is not None:
                    precision = cur.precision
                else:
                    slot = self.index.get(key)
                    precision = (slot.precision if slot is not None
                                 else m.default_precision)
            tile = Tile(payload, precision=precision, coords=key)
            self.clean.discard(key)  # any existing slot is now stale
            store._evict_to_fit(tile.nbytes, exclude=(self.bid, key))
            with m._grid_lock:
                m._tiles[key] = tile
            store.residency.add((self.bid, key), tile.nbytes)

    def adopt(self, key: tuple[int, int], raw: np.ndarray,
              precision: Precision) -> None:
        """Register an already-encoded tile as *spilled* (not resident).

        This is how store-backed artifact loading streams an ``.npz``
        straight onto disk: each tile's native bytes go to the segment
        and fault in lazily, so opening a model costs near-zero
        resident tile bytes.
        """
        with self.store._lock:
            m = self.matrix()
            if m is not None:
                with m._grid_lock:
                    resident = key in m._tiles
                if resident:
                    raise RuntimeError(
                        f"tile {key} is already resident; adopt() is for "
                        "spill-only registration")
            self._write_slot(key, np.ascontiguousarray(raw), precision)
            self.clean.discard(key)

    # -- introspection --------------------------------------------------
    def has_data(self, key: tuple[int, int]) -> bool:
        with self.store._lock:
            m = self.matrix()
            if m is not None:
                with m._grid_lock:
                    if key in m._tiles:
                        return True
            return key in self.index

    def data_keys(self) -> set[tuple[int, int]]:
        """Keys holding data (resident or spilled)."""
        with self.store._lock:
            m = self.matrix()
            keys = set(self.index)
            if m is not None:
                with m._grid_lock:
                    keys.update(m._tiles)
            return keys

    def tile_precision(self, key: tuple[int, int]) -> Precision | None:
        with self.store._lock:
            m = self.matrix()
            if m is not None:
                with m._grid_lock:
                    tile = m._tiles.get(key)
                if tile is not None:
                    return tile.precision
            slot = self.index.get(key)
            return slot.precision if slot is not None else None

    def logical_nbytes(self) -> int:
        """Storage footprint of all tiles, resident *or* spilled."""
        with self.store._lock:
            m = self.matrix()
            tiles = {}
            if m is not None:
                with m._grid_lock:
                    tiles = dict(m._tiles)
            total = sum(t.nbytes for t in tiles.values())
            total += sum(slot.length for key, slot in self.index.items()
                         if key not in tiles)
            return total

    def resident_nbytes(self) -> int:
        """Bytes actually resident for this matrix (what a budget sees)."""
        with self.store._lock:
            m = self.matrix()
            if m is None:
                return 0
            with m._grid_lock:
                return sum(t.nbytes for t in m._tiles.values())

    def footprint_by_precision(self) -> dict[Precision, int]:
        with self.store._lock:
            m = self.matrix()
            tiles = {}
            if m is not None:
                with m._grid_lock:
                    tiles = dict(m._tiles)
            out: dict[Precision, int] = {}
            for t in tiles.values():
                out[t.precision] = out.get(t.precision, 0) + t.nbytes
            for key, slot in self.index.items():
                if key not in tiles:
                    out[slot.precision] = out.get(slot.precision, 0) + slot.length
            return out

    # -- lifecycle ------------------------------------------------------
    def detach(self) -> None:
        """Fault every spilled tile in and unbind from the store.

        Residency becomes unmanaged (and unbounded) afterwards — this
        is the escape hatch back to a fully-resident matrix.
        """
        store = self.store
        with store._lock:
            m = self.matrix()
            if m is not None:
                for key in list(self.index):
                    with m._grid_lock:
                        resident = key in m._tiles
                    if not resident:
                        slot = self.index[key]
                        payload = self._decode_slot(slot, key)
                        with m._grid_lock:
                            m._tiles[key] = Tile(payload,
                                                 precision=slot.precision,
                                                 coords=key)
                m._binding = None
            store._drop_binding(self.bid)


# ----------------------------------------------------------------------
# the store
# ----------------------------------------------------------------------
class TileStore:
    """Budgeted out-of-core backing store for tile matrices.

    Parameters
    ----------
    directory:
        Where segment files live.  ``None`` creates a private temporary
        directory that is removed when the store is closed or garbage
        collected; an explicit directory is left in place (only the
        ``seg-*.bin`` files are removed on close).
    budget_bytes:
        Residency budget over all bound matrices (storage-precision
        bytes).  ``None`` disables eviction — the store then only spills
        on request (``adopt``) and for artifact-backed loads.
    prefetch:
        Enable the background reader that fault-ins upcoming tiles
        announced by the scheduler hooks (see
        :class:`~repro.store.hooks.StoreSchedulerHooks`).  Prefetch is
        strictly best-effort: it never evicts to make room.
    """

    def __init__(self, directory: str | Path | None = None,
                 budget_bytes: int | None = None,
                 prefetch: bool = True) -> None:
        self._lock = threading.RLock()
        self.residency = ResidencyManager(budget_bytes)
        if directory is None:
            directory = os.environ.get(STORE_DIR_ENV) or None
        self._owns_directory = directory is None
        self.directory = Path(tempfile.mkdtemp(prefix="repro-store-")
                              if directory is None else directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._bindings: dict[int, StoreBinding] = {}
        self._next_bid = 0
        self._segments: list[_Segment] = []
        self._closed = False

        self._prefetch_enabled = bool(prefetch)
        self._queue: deque[TileDep] = deque()
        self._queue_cv = threading.Condition()
        self._stop = threading.Event()
        self._reader: threading.Thread | None = None

        # GC-time cleanup must not resurrect the store: capture only the
        # state the janitor needs.
        self._finalizer = weakref.finalize(
            self, TileStore._janitor, self._segments, self.directory,
            self._owns_directory, self._stop, self._queue_cv)

    # ------------------------------------------------------------------
    @property
    def budget_bytes(self) -> int | None:
        return self.residency.budget_bytes

    @property
    def stats(self) -> StoreStats:
        """The live counters (use ``.snapshot()`` for a stable copy)."""
        return self.residency.stats

    def resident_bytes(self) -> int:
        with self._lock:
            return self.residency.stats.resident_bytes

    # ------------------------------------------------------------------
    # binding lifecycle
    # ------------------------------------------------------------------
    def bind(self, matrix: "TileMatrix") -> StoreBinding:
        """Bind ``matrix``: its tiles become budget-managed.

        Already-resident tiles are accounted immediately (and may be
        spilled right away if they exceed the budget).
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("TileStore is closed")
            bid = self._next_bid
            self._next_bid += 1
            binding = StoreBinding(self, bid, matrix)
            self._bindings[bid] = binding
            with matrix._grid_lock:
                tiles = dict(matrix._tiles)
            for key, tile in tiles.items():
                self.residency.add((bid, key), tile.nbytes)
            weakref.finalize(matrix, self._purge_binding, bid)
            self._evict_to_fit(0)
            return binding

    def clone_binding(self, source: "TileMatrix",
                      target: "TileMatrix") -> StoreBinding:
        """Bind ``target`` as a shallow copy of ``source``'s binding.

        The resident tile grid is copied atomically (sharing the tile
        objects — copy-on-write at tile granularity, exactly like
        :meth:`TileMatrix.shallow_copy`), and spill slots are shared
        read-only; a later re-spill from either matrix appends a fresh
        slot.  Shared tiles are accounted once per binding, so the
        budget view is conservative.
        """
        src_binding = source._binding
        if src_binding is None or src_binding.store is not self:
            raise ValueError("source matrix is not bound to this store")
        with self._lock:
            if self._closed:
                raise RuntimeError("TileStore is closed")
            bid = self._next_bid
            self._next_bid += 1
            binding = StoreBinding(self, bid, target)
            with source._grid_lock:
                tiles = dict(source._tiles)
            target._tiles = dict(tiles)
            for slot in src_binding.index.values():
                slot.owners += 1
            binding.index = dict(src_binding.index)
            binding.clean = set(src_binding.clean)
            self._bindings[bid] = binding
            # Account shared tiles one at a time, evicting to fit before
            # each: a shallow copy allocates no new payloads, so the
            # accounted peak must not spike by the duplicated bytes —
            # instead the LRU (typically the source's copies) spills
            # until the duplicated residency fits the budget.
            for key, tile in tiles.items():
                self._evict_to_fit(tile.nbytes, exclude=(bid, key))
                self.residency.add((bid, key), tile.nbytes)
            weakref.finalize(target, self._purge_binding, bid)
            return binding

    def _drop_binding(self, bid: int) -> None:
        """Forget a binding (caller holds the lock or is single-owner)."""
        binding = self._bindings.pop(bid, None)
        if binding is not None:
            for slot in binding.index.values():
                slot.owners -= 1
            self.residency.remove_binding(bid)

    def _purge_binding(self, bid: int) -> None:
        """GC callback: a bound matrix died; drop its store state."""
        with self._lock:
            self._drop_binding(bid)

    def _new_segment(self, bid: int) -> _Segment:
        segment = _Segment(self.directory / f"seg-{bid:05d}.bin")
        self._segments.append(segment)
        return segment

    # ------------------------------------------------------------------
    # eviction
    # ------------------------------------------------------------------
    def _evict_to_fit(self, incoming: int,
                      exclude: tuple[int, tuple[int, int]] | None = None
                      ) -> None:
        """Evict LRU unpinned tiles until ``incoming`` bytes fit.

        Called under the store lock, *before* the incoming tile enters
        the grid — which is what keeps the accounted peak residency
        under the budget whenever the pinned working set fits.
        """
        victims = self.residency.victims_to_fit(incoming, exclude)
        if victims is None:
            return
        for victim in victims:
            self._evict_one(victim)

    def _evict_one(self, entry: tuple[int, tuple[int, int]]) -> None:
        bid, key = entry
        binding = self._bindings.get(bid)
        if binding is None:
            self.residency.remove(entry)
            return
        m = binding.matrix()
        if m is None:
            self.residency.remove(entry)
            return
        with m._grid_lock:
            tile = m._tiles.get(key)
        if tile is None:
            self.residency.remove(entry)
            return
        stats = self.residency.stats
        slot = binding.index.get(key)
        if key in binding.clean and slot is not None:
            stats.drops += 1
        else:
            raw = encode_payload(tile.data, tile.precision)
            slot = binding._write_slot(key, raw, tile.precision)
            stats.spills += 1
            stats.bytes_spilled += slot.length
        with m._grid_lock:
            # all grid writes of store-backed matrices hold the store
            # lock, so the tile cannot have been replaced — defensive
            if m._tiles.get(key) is tile:
                del m._tiles[key]
        binding.clean.discard(key)
        self.residency.remove(entry)

    def spill_all(self) -> None:
        """Spill every evictable (unpinned) resident tile.

        Mostly a test/debugging aid: forces the maximal out-of-core
        state so reload paths can be exercised deterministically.
        """
        with self._lock:
            for entry in list(self.residency.entries()):
                if not self.residency.pinned(entry):
                    self._evict_one(entry)

    # ------------------------------------------------------------------
    # integrity scrub
    # ------------------------------------------------------------------
    def verify(self, repair: bool = True) -> StoreVerifyReport:
        """Scrub every spill slot against its recorded CRC32.

        With ``repair`` (the default), a corrupted slot whose tile is
        still resident is transparently re-spilled from the resident
        payload — the crash-recovery move for slots dirtied by a torn
        write or bit rot while the good copy is still in memory.  Slots
        with no resident copy cannot be repaired; their typed errors
        are returned in the report (``verify`` scrubs everything rather
        than raising at the first hit).
        """
        with self._lock:
            checked = recovered = 0
            errors: list[StoreCorruptionError] = []
            for binding in list(self._bindings.values()):
                m = binding.matrix()
                for key, slot in list(binding.index.items()):
                    checked += 1
                    try:
                        binding._read_slot(slot, key)
                        continue
                    except StoreCorruptionError as exc:
                        error = exc
                    tile = None
                    if m is not None:
                        with m._grid_lock:
                            tile = m._tiles.get(key)
                    if repair and tile is not None:
                        raw = encode_payload(tile.data, tile.precision)
                        binding._write_slot(key, np.ascontiguousarray(raw),
                                            tile.precision)
                        binding.clean.add(key)
                        recovered += 1
                        self.residency.stats.recovered_spills += 1
                    else:
                        errors.append(error)
            return StoreVerifyReport(slots_checked=checked,
                                     recovered=recovered,
                                     errors=tuple(errors))

    # ------------------------------------------------------------------
    # scheduler integration: pins and prefetch
    # ------------------------------------------------------------------
    def pin(self, deps: Iterable[TileDep]) -> None:
        """Pin tiles against eviction while a task is in flight."""
        with self._lock:
            for binding, key in deps:
                if binding.store is self:
                    self.residency.pin((binding.bid, key))

    def unpin(self, deps: Iterable[TileDep]) -> None:
        with self._lock:
            for binding, key in deps:
                if binding.store is self:
                    self.residency.unpin((binding.bid, key))

    def prefetch(self, deps: Iterable[TileDep]) -> None:
        """Queue tiles for the background reader (best-effort)."""
        if not self._prefetch_enabled or self._closed:
            return
        deps = [d for d in deps if d[0].store is self]
        if not deps:
            return
        with self._queue_cv:
            self._queue.extend(deps)
            if self._reader is None:
                self._reader = threading.Thread(
                    target=_reader_loop,
                    args=(weakref.ref(self), self._queue, self._queue_cv,
                          self._stop),
                    name="repro-store-reader", daemon=True)
                self._reader.start()
            self._queue_cv.notify()

    def _prefetch_one(self, dep: TileDep) -> None:
        """Fault one queued tile in ahead of demand.

        The segment read and payload decode run *outside* the store
        lock — prefetch exists to hide reload latency, so it must not
        stall concurrent fault-ins/writes/evictions for the I/O's
        duration.  The result is installed only after re-validating
        under the lock that the slot is still current (same ``_Slot``
        object: an in-place re-spill replaces it, so a torn concurrent
        read can never be installed), the tile is still absent, and it
        fits the budget without evicting anything.
        """
        binding, key = dep
        with self._lock:
            if self._closed or binding.bid not in self._bindings:
                return
            m = binding.matrix()
            if m is None:
                return
            with m._grid_lock:
                if key in m._tiles:
                    return  # already resident
            slot = binding.index.get(key)
            if slot is None or not self.residency.would_fit(slot.length):
                return
        # I/O + decode with the lock released
        payload = binding._decode_slot(slot, key)
        tile = Tile(payload, precision=slot.precision, coords=key)
        with self._lock:
            if self._closed or binding.bid not in self._bindings:
                return
            if binding.index.get(key) is not slot:
                return  # superseded while we read: discard
            m = binding.matrix()
            if m is None:
                return
            with m._grid_lock:
                if key in m._tiles:
                    return
            if not self.residency.would_fit(tile.nbytes):
                return  # prefetch never evicts the working set
            with m._grid_lock:
                m._tiles[key] = tile
            self.residency.add((binding.bid, key), tile.nbytes)
            binding.clean.add(key)
            stats = self.residency.stats
            stats.reloads += 1
            stats.bytes_reloaded += slot.length
            stats.prefetches += 1

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop the reader and delete segment files.

        Spilled tiles become unreadable — close only once every bound
        matrix is either detached or no longer needed.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._finalizer.detach()
        TileStore._janitor(self._segments, self.directory,
                           self._owns_directory, self._stop, self._queue_cv)

    @staticmethod
    def _janitor(segments: list[_Segment], directory: Path,
                 owns_directory: bool, stop: threading.Event,
                 queue_cv: threading.Condition) -> None:
        stop.set()
        with queue_cv:
            queue_cv.notify_all()
        for segment in segments:
            segment.close()
            try:
                segment.path.unlink(missing_ok=True)
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
        if owns_directory:
            shutil.rmtree(directory, ignore_errors=True)

    def __enter__(self) -> "TileStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.stats
        budget = s.budget_bytes if s.budget_bytes is not None else "unbounded"
        return (f"TileStore({len(self._bindings)} matrices, "
                f"resident={s.resident_bytes}/{budget} B, "
                f"spills={s.spills}, reloads={s.reloads})")


def _reader_loop(store_ref, queue: deque, cv: threading.Condition,
                 stop: threading.Event) -> None:
    """Background prefetch reader (holds only a weakref to the store)."""
    while True:
        with cv:
            while not queue and not stop.is_set():
                cv.wait(timeout=1.0)
                if store_ref() is None:
                    return
            if stop.is_set():
                return
            dep = queue.popleft()
        store = store_ref()
        if store is None:
            return
        try:
            store._prefetch_one(dep)
        except Exception:  # pragma: no cover - prefetch is best-effort
            pass
