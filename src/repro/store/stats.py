"""Counters of the out-of-core tile store.

``StoreStats`` is the observable contract of :class:`~repro.store.TileStore`:
the acceptance criterion of the out-of-core pipeline is *peak resident
tile bytes under budget with bitwise-identical results*, and these
counters are what tests, the ``BENCH_oocore`` harness and the examples
assert that claim against.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace


@dataclass
class StoreStats:
    """Accounting of one :class:`~repro.store.TileStore`.

    Attributes
    ----------
    budget_bytes:
        Residency budget the store enforces (``None`` = unbounded).
    resident_bytes:
        Tile bytes currently resident across all bound matrices,
        counted at each tile's *storage* precision (an FP8 tile costs
        one byte per element, mirroring the in-memory mosaic).
    peak_resident_bytes:
        High-water mark of ``resident_bytes``.  The out-of-core
        contract is ``peak_resident_bytes <= budget_bytes`` whenever
        the pinned working set fits the budget.
    spills:
        Tile payloads encoded and written to a segment file (dirty
        evictions).
    drops:
        Clean evictions: the resident payload was bit-identical to its
        spill slot, so eviction freed memory without writing.
    reloads:
        Tiles faulted back in from a segment file.
    prefetches:
        Reloads performed ahead of demand by the background reader.
    bytes_spilled, bytes_reloaded:
        Byte totals of the above (storage-precision bytes).
    budget_overflows:
        Times the store had to exceed the budget because every eviction
        candidate was pinned by an in-flight task.
    io_retries:
        Segment reads/writes re-attempted after a transient ``OSError``
        (each slot I/O gets one immediate retry before failing).
    crc_failures:
        Slot reads that failed the integrity check (truncation, CRC32
        mismatch, undecodable bytes) after retry — each surfaced as a
        typed :class:`~repro.resilience.errors.StoreCorruptionError`.
    recovered_spills:
        Corrupted slots rewritten from a still-resident tile by
        :meth:`~repro.store.TileStore.verify`.
    """

    budget_bytes: int | None = None
    resident_bytes: int = 0
    peak_resident_bytes: int = 0
    spills: int = 0
    drops: int = 0
    reloads: int = 0
    prefetches: int = 0
    bytes_spilled: int = 0
    bytes_reloaded: int = 0
    budget_overflows: int = 0
    io_retries: int = 0
    crc_failures: int = 0
    recovered_spills: int = 0

    def snapshot(self) -> "StoreStats":
        """Point-in-time copy (the live object keeps mutating)."""
        return replace(self)

    def to_dict(self) -> dict:
        """JSON-ready view for benchmark artifacts (``BENCH_oocore``)."""
        return {
            "budget_bytes": self.budget_bytes,
            "resident_bytes": self.resident_bytes,
            "peak_resident_bytes": self.peak_resident_bytes,
            "spills": self.spills,
            "drops": self.drops,
            "reloads": self.reloads,
            "prefetches": self.prefetches,
            "bytes_spilled": self.bytes_spilled,
            "bytes_reloaded": self.bytes_reloaded,
            "budget_overflows": self.budget_overflows,
            "io_retries": self.io_retries,
            "crc_failures": self.crc_failures,
            "recovered_spills": self.recovered_spills,
        }


@dataclass
class _Entry:
    """Residency record of one resident tile (keyed by (binding, key))."""

    nbytes: int
    pins: int = 0
    last_used: int = 0


class ResidencyManager:
    """Budgeted LRU residency accounting with pin/unpin refcounts.

    The manager owns *which* tiles may stay resident; the
    :class:`~repro.store.TileStore` owns *how* they move (encode/decode,
    segment I/O, grid mutation).  All methods must be called under the
    store's lock — the manager itself is deliberately lock-free so the
    store can compose residency decisions with grid mutation atomically.

    Eviction order is least-recently-*used*, where "use" is a fault-in,
    a write, or any tile read (:meth:`note_use` — cheap enough for the
    lock-free read fast path, so a hot panel tile consumed by many
    trailing updates keeps its recency); pinned entries (tiles an
    in-flight task declared as inputs/outputs) are never selected, so a
    running task can never have a tile evicted under it.
    """

    def __init__(self, budget_bytes: int | None = None) -> None:
        if budget_bytes is not None and budget_bytes <= 0:
            raise ValueError("budget_bytes must be positive (or None)")
        self.budget_bytes = budget_bytes
        self.stats = StoreStats(budget_bytes=budget_bytes)
        # recency lives in each entry's last_used tick (victim scans
        # sort by it), NOT in dict order — so bumping recency is a
        # plain attribute write, safe without the store lock
        self._entries: dict[tuple[int, tuple[int, int]], _Entry] = {}
        self._tick = 0
        # pins may arrive before the tile is resident (a task is
        # dispatched, then faults its inputs in) — track them separately
        self._pending_pins: dict[tuple[int, tuple[int, int]], int] = {}

    # ------------------------------------------------------------------
    # residency accounting
    # ------------------------------------------------------------------
    def resident(self, key: tuple[int, tuple[int, int]]) -> bool:
        return key in self._entries

    def entry_bytes(self, key: tuple[int, tuple[int, int]]) -> int:
        entry = self._entries.get(key)
        return entry.nbytes if entry is not None else 0

    def add(self, key: tuple[int, tuple[int, int]], nbytes: int) -> None:
        """Record a tile becoming resident (fault-in or fresh write)."""
        old = self._entries.pop(key, None)
        pins = old.pins if old is not None else self._pending_pins.pop(key, 0)
        if old is not None:
            self.stats.resident_bytes -= old.nbytes
        self._entries[key] = _Entry(nbytes=int(nbytes), pins=pins)
        self.stats.resident_bytes += int(nbytes)
        if self.stats.resident_bytes > self.stats.peak_resident_bytes:
            self.stats.peak_resident_bytes = self.stats.resident_bytes
        self.touch(key)

    def remove(self, key: tuple[int, tuple[int, int]]) -> None:
        """Record a tile leaving residency (eviction or binding death)."""
        entry = self._entries.pop(key, None)
        if entry is None:
            return
        self.stats.resident_bytes -= entry.nbytes
        if entry.pins:
            # evicting pinned entries is forbidden; this path is only
            # reached on binding teardown, where the pin is moot
            self._pending_pins[key] = entry.pins

    def touch(self, key: tuple[int, tuple[int, int]]) -> None:
        """Mark ``key`` most-recently-used."""
        self.note_use(key)

    def note_use(self, key: tuple[int, tuple[int, int]]) -> None:
        """Lock-free recency bump for the tile-read fast path.

        A dict read plus an attribute write — both atomic under the
        GIL — so store-backed ``get_tile`` can record every resident
        read without taking the store lock.  A racing eviction may drop
        the entry between lookup and write; the bump is then simply
        lost, which only costs a potential reload later.
        """
        entry = self._entries.get(key)
        if entry is not None:
            self._tick += 1
            entry.last_used = self._tick

    def entries(self) -> list[tuple[int, tuple[int, int]]]:
        """Resident entries, least-recently-used first."""
        order = sorted(self._entries.items(), key=lambda kv: kv[1].last_used)
        return [k for k, _ in order]

    def remove_binding(self, bid: int) -> None:
        """Drop every entry (and pending pin) of a dead binding."""
        for key in [k for k in self._entries if k[0] == bid]:
            entry = self._entries.pop(key)
            self.stats.resident_bytes -= entry.nbytes
        for key in [k for k in self._pending_pins if k[0] == bid]:
            del self._pending_pins[key]

    # ------------------------------------------------------------------
    # pinning
    # ------------------------------------------------------------------
    def pin(self, key: tuple[int, tuple[int, int]]) -> None:
        entry = self._entries.get(key)
        if entry is not None:
            entry.pins += 1
        else:
            self._pending_pins[key] = self._pending_pins.get(key, 0) + 1

    def unpin(self, key: tuple[int, tuple[int, int]]) -> None:
        entry = self._entries.get(key)
        if entry is not None:
            if entry.pins > 0:
                entry.pins -= 1
            return
        left = self._pending_pins.get(key, 0) - 1
        if left > 0:
            self._pending_pins[key] = left
        else:
            self._pending_pins.pop(key, None)

    def pinned(self, key: tuple[int, tuple[int, int]]) -> bool:
        entry = self._entries.get(key)
        if entry is not None:
            return entry.pins > 0
        return self._pending_pins.get(key, 0) > 0

    # ------------------------------------------------------------------
    # eviction planning
    # ------------------------------------------------------------------
    def would_fit(self, incoming: int) -> bool:
        """True when ``incoming`` bytes fit without any eviction."""
        if self.budget_bytes is None:
            return True
        return self.stats.resident_bytes + int(incoming) <= self.budget_bytes

    def victims_to_fit(
        self, incoming: int,
        exclude: tuple[int, tuple[int, int]] | None = None,
    ) -> list[tuple[int, tuple[int, int]]] | None:
        """LRU victims whose eviction makes ``incoming`` bytes fit.

        Returns ``None`` when the budget cannot be met even after
        evicting every unpinned candidate (the caller then proceeds
        over budget and the overflow is counted).
        """
        if self.budget_bytes is None:
            return []
        need = self.stats.resident_bytes + int(incoming) - self.budget_bytes
        if need <= 0:
            return []
        victims: list[tuple[int, tuple[int, int]]] = []
        by_recency = sorted(self._entries.items(),
                            key=lambda kv: kv[1].last_used)  # LRU -> MRU
        for key, entry in by_recency:
            if entry.pins > 0 or key == exclude:
                continue
            victims.append(key)
            need -= entry.nbytes
            if need <= 0:
                return victims
        self.stats.budget_overflows += 1
        return None if not victims else victims
