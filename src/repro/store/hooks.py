"""Scheduler ↔ store integration: pinning and prefetch.

The out-of-order executors (:class:`~repro.runtime.scheduler.Scheduler`)
expose three lifecycle hooks per task; ``StoreSchedulerHooks`` maps them
onto the store's residency protocol:

``task_ready``
    The task's dependencies have resolved and it entered the ready
    heap.  Its declared input/output tiles (``Task.tile_deps``) are
    handed to the background reader, which faults spilled tiles in
    ahead of dispatch — but only when they fit the budget without
    evicting anything (prefetch never steals the working set).

``task_dispatch``
    A worker picked the task.  Its tiles are **pinned**: eviction will
    not select them while the task runs, so an in-flight task can never
    have a tile evicted under it.  Pinning at dispatch (rather than at
    ready) keeps the pinned set bounded by the worker count — with a
    wide trailing update, hundreds of GEMMs may be ready at once, and
    pinning all of their tiles would wedge the budget.

``task_complete``
    The pins are released (also on task failure); the tiles become
    ordinary LRU citizens again.

Correctness never depends on these hooks: a task that reads an evicted
tile faults it back in bitwise.  The hooks exist to keep the working
set resident (pins) and to hide reload latency (prefetch).
"""

from __future__ import annotations

from repro.store.store import TileStore

__all__ = ["StoreSchedulerHooks"]


class StoreSchedulerHooks:
    """Bridge from scheduler task lifecycle events to a ``TileStore``."""

    def __init__(self, store: TileStore) -> None:
        self.store = store

    def task_ready(self, task) -> None:
        deps = getattr(task, "tile_deps", ())
        if deps:
            self.store.prefetch(deps)

    def task_dispatch(self, task) -> None:
        deps = getattr(task, "tile_deps", ())
        if deps:
            self.store.pin(deps)

    def task_complete(self, task) -> None:
        deps = getattr(task, "tile_deps", ())
        if deps:
            self.store.unpin(deps)
