"""Coordinator-side drain of the process backend.

``run_process`` is the fourth executor over the shared dependency
engine (see :mod:`repro.runtime.scheduler`): the coordinator keeps the
ready heap, indegrees, store pin/prefetch hooks, retry bookkeeping and
trace accounting of the serial drain, but instead of calling a task's
closure it ships the task's :class:`ProcessTaskSpec` descriptor plus
:class:`PayloadRef` input locators to an idle worker process and reaps
``("ok"| "err", uid, ...)`` replies via ``multiprocessing.connection
.wait``.

Handle payloads are *lazy* on the coordinator: a worker-written handle
holds only a ref until some coordinator-side consumer needs the bytes
(an inline task, an ``on_complete`` writeback, or the end of the
drain, when every still-referenced handle is materialized so callers
see ordinary payloads).  Tasks whose ``pspec`` is ``None`` (e.g. the
Build consume step, which mutates builder state) run inline on the
coordinator through the scheduler's own ``_execute_task`` — same
injection sites, same retry policy.

Failure semantics match the other drains exactly, with one addition: a
worker that dies mid-task (closed pipe / dead process) surfaces as a
transient :class:`~repro.resilience.errors.WorkerCrashError` — the
worker is respawned and the task retried under the
:class:`RetryPolicy`, or folded into the drain's
:class:`TaskGroupError`.
"""

from __future__ import annotations

import heapq
import time
import weakref
from collections import deque
from multiprocessing import connection as mp_connection

from repro.resilience.errors import (
    TaskFailure,
    TaskTimeoutError,
    WorkerCrashError,
)
from repro.resilience.faults import SITE_TASK_BODY, SITE_WORKER_STALL, active_plan
from repro.parallel.descriptors import ObjectInput, TileInput
from repro.parallel.pool import ProcessPool
from repro.parallel.worker import load_exception

__all__ = ["ensure_pool", "run_process"]

#: Poll period of the reply wait when no per-task timeout is set; only
#: bounds how fast Ctrl-C is noticed, not throughput (replies wake the
#: wait immediately).
_IDLE_POLL_S = 1.0


def ensure_pool(scheduler) -> ProcessPool:
    """The scheduler's lazily-started pool (spawned on first drain).

    The pool is tied to the scheduler object: a finalizer shuts it
    down when the scheduler is collected, and ``Scheduler.close()``
    does so deterministically.
    """
    pool = getattr(scheduler, "_pool", None)
    if pool is not None and not pool.closed:
        return pool
    pool = ProcessPool(workers=scheduler.workers)
    pool.start()
    scheduler._pool = pool
    scheduler._pool_finalizer = weakref.finalize(
        scheduler, ProcessPool.shutdown, pool)
    return pool


def run_process(scheduler, graph):
    """Drain ``graph`` on the scheduler's worker-process pool."""
    from repro.runtime.comm import CommunicationEngine
    from repro.runtime.device import HOST_WORKER, make_devices
    from repro.runtime.scheduler import (
        ScheduleResult,
        SchedulerError,
        _ready_heap,
    )
    from repro.runtime.trace import ExecutionTrace, TaskEvent

    pool = ensure_pool(scheduler)
    exchange = pool.exchange
    hooks = scheduler.hooks
    policy = scheduler.retry_policy
    timeout = scheduler.task_timeout_s

    indegree, order_index, ready = _ready_heap(graph)
    if hooks is not None:
        for _, _, task in ready:
            hooks.task_ready(task)

    devices = make_devices(pool.workers, HOST_WORKER)
    trace = ExecutionTrace()
    completed = []
    failures = []
    #: retries already charged to a task (coordinator-level re-dispatches
    #: after crashes/injected faults; inline tasks add their own).
    attempts = {}
    #: handle uid -> PayloadRef of its current value in the exchange
    current_ref = {}
    #: handle uid -> handle whose `payload` is older than current_ref
    stale = {}
    #: published aux inputs, keyed ("tile", id(matrix), coords) or
    #: ("obj", key); tile entries die on writeback, obj entries per drain
    aux_refs = {}
    inflight = {}  # worker index -> (task, dispatch wall-clock)
    idle = deque(range(pool.workers))
    t0 = time.perf_counter()

    # ------------------------------------------------------------------
    # payload plumbing
    # ------------------------------------------------------------------
    def publish_handle(handle):
        ref = current_ref.get(handle.uid)
        if ref is None and handle.payload is not None:
            ref = exchange.put(handle.payload)
            current_ref[handle.uid] = ref
        return ref

    def publish_aux(entry):
        if isinstance(entry, ObjectInput):
            key = ("obj", entry.key)
            ref = aux_refs.get(key)
            if ref is None:
                ref = exchange.put(entry.obj)
                aux_refs[key] = ref
            return ref
        key = ("tile", id(entry.matrix), entry.coords)
        ref = aux_refs.get(key)
        if ref is None:
            ref = exchange.put(entry.matrix.get_tile(*entry.coords))
            aux_refs[key] = ref
        return ref

    def input_refs(task):
        spec = task.pspec
        refs = []
        if spec.mode in ("handles", "both"):
            for handle, _ in task.accesses:
                refs.append(publish_handle(handle))
        if spec.mode in ("aux", "both"):
            for entry in spec.aux:
                refs.append(publish_aux(entry))
        return tuple(refs)

    def materialize(handle):
        """Make ``handle.payload`` current when a worker wrote it."""
        if handle.uid in stale:
            handle.payload = exchange.get(current_ref[handle.uid])
            del stale[handle.uid]

    # ------------------------------------------------------------------
    # completion bookkeeping (shared by inline and worker completions)
    # ------------------------------------------------------------------
    def record_success(task, widx, start, end, retries):
        completed.append(task)
        trace.add(TaskEvent(
            task_name=task.name, task_uid=task.uid, device=widx,
            start=start, end=end, flops=task.flops,
            precision=task.precision, tag=task.tag,
            flops_detail=task.flops_detail, retries=retries,
        ))
        devices[widx].busy_time += end - start
        devices[widx].tasks_executed += 1
        for succ in graph.successors(task):
            indegree[succ] -= 1
            if indegree[succ] == 0:
                heapq.heappush(ready,
                               (-succ.priority, order_index[succ], succ))
                if hooks is not None:
                    hooks.task_ready(succ)

    def fail(task, error):
        failures.append(TaskFailure(task=task, error=error,
                                    retries=attempts.get(task, 0)))

    def fail_or_retry(task, error):
        """Requeue a transiently-failed dispatch, or record the failure.

        Mirrors ``Scheduler._execute_task``'s loop, spread across the
        event loop: each re-dispatch counts as one retry and sleeps the
        policy's deterministic backoff.
        """
        taken = attempts.get(task, 0)
        if (policy is not None and taken < policy.max_retries
                and policy.retryable(error)):
            attempts[task] = taken + 1
            time.sleep(policy.delay(taken, f"{task.name}#{task.uid}"))
            # back on the heap; task_ready already fired for this task
            heapq.heappush(ready, (-task.priority, order_index[task], task))
            return
        fail(task, error)

    # ------------------------------------------------------------------
    # inline execution (tasks without a pspec run on the coordinator)
    # ------------------------------------------------------------------
    def run_inline(task):
        if hooks is not None:
            hooks.task_dispatch(task)
        start = time.perf_counter() - t0
        try:
            for handle, _ in task.accesses:
                materialize(handle)
            retries, error = scheduler._execute_task(task)
        finally:
            if hooks is not None:
                hooks.task_complete(task)
        end = time.perf_counter() - t0
        retries += attempts.get(task, 0)
        attempts[task] = retries
        if error is None and timeout is not None and end - start > timeout:
            error = TaskTimeoutError(task.name, task.uid, task.tag,
                                     timeout, end - start)
        if error is not None:
            fail(task, error)
            return
        for handle, mode in task.accesses:
            if mode.writes:
                # the coordinator's payload is now the truth
                current_ref.pop(handle.uid, None)
                stale.pop(handle.uid, None)
        record_success(task, 0, start, end, retries)

    # ------------------------------------------------------------------
    # dispatch / reply handling
    # ------------------------------------------------------------------
    def dispatch(task, widx) -> bool:
        """Ship ``task`` to worker ``widx``; False if the slot is free
        again (injected failure or dead worker)."""
        if hooks is not None:
            hooks.task_dispatch(task)
        key = f"{task.name}#{task.uid}"
        plan = active_plan()
        if plan is not None:
            # the same coordinator-side sites the other drains fire per
            # attempt, so env chaos plans hit process runs too
            try:
                plan.inject(SITE_WORKER_STALL, key)
                plan.inject(SITE_TASK_BODY, key)
            except BaseException as exc:  # noqa: BLE001
                if hooks is not None:
                    hooks.task_complete(task)
                fail_or_retry(task, exc)
                return False
        try:
            refs = input_refs(task)
            pool.send(widx, ("task", task.uid, task.pspec.body, refs, key))
        except (OSError, ValueError) as exc:
            if hooks is not None:
                hooks.task_complete(task)
            crash = WorkerCrashError(widx, task.name, task.uid,
                                     pool.exitcode(widx))
            crash.__cause__ = exc
            pool.respawn(widx)
            fail_or_retry(task, crash)
            return False
        inflight[widx] = (task, time.perf_counter())
        return True

    def finish_worker_task(task, widx, started, out_refs):
        if hooks is not None:
            hooks.task_complete(task)
        end = time.perf_counter() - t0
        spec = task.pspec
        try:
            if spec.on_complete is not None:
                outs = tuple(exchange.get(ref) if ref is not None else None
                             for ref in out_refs)
                spec.on_complete(*outs)
                for entry in spec.aux:
                    if isinstance(entry, TileInput) and entry.writeback:
                        aux_refs.pop(("tile", id(entry.matrix), entry.coords),
                                     None)
            else:
                written = [h for h, mode in task.accesses if mode.writes]
                if len(out_refs) != len(written):
                    raise RuntimeError(
                        f"task {task.name!r}#{task.uid} returned "
                        f"{len(out_refs)} output(s) for {len(written)} "
                        "written handle(s)")
                for handle, ref in zip(written, out_refs):
                    if ref is None:
                        handle.payload = None
                        current_ref.pop(handle.uid, None)
                        stale.pop(handle.uid, None)
                    else:
                        current_ref[handle.uid] = ref
                        stale[handle.uid] = handle
        except Exception as exc:  # noqa: BLE001 - e.g. writeback I/O
            fail_or_retry(task, exc)
            return
        record_success(task, widx, started - t0, end,
                       attempts.get(task, 0))

    def handle_crash(widx, task):
        if hooks is not None and task is not None:
            hooks.task_complete(task)
        exitcode = pool.exitcode(widx)
        pool.respawn(widx)
        if task is not None:
            fail_or_retry(task, WorkerCrashError(
                widx, task.name, task.uid, exitcode))

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    try:
        while ready or inflight:
            while ready:
                _, _, task = ready[0]
                if task.pspec is None:
                    heapq.heappop(ready)
                    run_inline(task)
                    continue
                if not idle:
                    break
                heapq.heappop(ready)
                widx = idle.popleft()
                if not dispatch(task, widx):
                    idle.appendleft(widx)
            if not inflight:
                continue  # a failed dispatch may have requeued work

            conns = {pool.conn(widx): widx for widx in inflight}
            poll = _IDLE_POLL_S
            if timeout is not None:
                poll = max(0.005, min(timeout / 4.0, poll))
            readable = mp_connection.wait(list(conns), timeout=poll)
            if not readable:
                if timeout is None:
                    continue
                now = time.perf_counter()
                for widx in list(inflight):
                    task, started = inflight[widx]
                    if now - started > timeout:
                        # preempt for real: kill the wedged worker
                        del inflight[widx]
                        if hooks is not None:
                            hooks.task_complete(task)
                        pool.respawn(widx)
                        idle.append(widx)
                        fail(task, TaskTimeoutError(
                            task.name, task.uid, task.tag, timeout,
                            now - started))
                continue

            for conn in readable:
                widx = conns[conn]
                task, started = inflight.pop(widx)
                idle.append(widx)
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    handle_crash(widx, task)
                    continue
                kind = message[0]
                if kind == "ok":
                    _, _uid, out_refs = message
                    finish_worker_task(task, widx, started, out_refs)
                elif kind == "err":
                    if hooks is not None:
                        hooks.task_complete(task)
                    fail_or_retry(task, load_exception(message[2]))
                else:  # pragma: no cover - protocol violation
                    if hooks is not None:
                        hooks.task_complete(task)
                    fail(task, RuntimeError(
                        f"unexpected worker message {kind!r}"))
    except BaseException:
        # abnormal exit (KeyboardInterrupt, bug) with tasks in flight:
        # never let stale replies poison the next drain
        pool.reset_all()
        raise

    # Hand every still-referenced handle its bytes back, then reset the
    # exchange on both sides — refs never outlive a drain.  This runs
    # on the failure path too: a resumed run's surviving inputs must be
    # ordinary payloads.
    for uid in list(stale):
        handle = stale.pop(uid)
        handle.payload = exchange.get(current_ref[uid])
    current_ref.clear()
    aux_refs.clear()
    pool.end_drain()

    if failures:
        raise scheduler._group_error(graph, failures, completed,
                                     order_index, trace)
    if len(completed) != graph.num_tasks:
        raise SchedulerError(
            f"schedule executed {len(completed)} of {graph.num_tasks} "
            "tasks (dependency deadlock)")
    return ScheduleResult(trace=trace, comm=CommunicationEngine(),
                          devices=devices)
