"""Picklable task-body descriptors for the process backend.

Closures cannot cross a process boundary, so every task kind that may
run on a worker carries a :class:`ProcessTaskSpec` next to its closure
body: a small frozen dataclass (the *descriptor*) naming the kernel and
its scalar parameters, plus a description of where the task's inputs
come from.  The closure body stays authoritative for the serial /
threaded / simulated drains; the descriptor re-expresses the same
arithmetic for workers, operation for operation, so both produce
bitwise identical results.

Input modes (``ProcessTaskSpec.mode``):

``"handles"``
    Worker arguments are the task's access-list payloads in declaration
    order (the same tuple :meth:`Task.execute` passes a closure).
``"aux"``
    Arguments come solely from :attr:`ProcessTaskSpec.aux` — e.g. the
    store-backed Cholesky, whose handles are empty sync tokens and
    whose tiles live in the out-of-core store.
``"both"``
    Handle payloads first, then the aux entries (triangular solve:
    row-block payloads plus the factor tile).

Aux entries are resolved by the *coordinator* at dispatch time:
:class:`TileInput` faults a tile in through the store (after the
dispatch hook pinned it) and publishes it to the exchange, cached per
``(matrix, coords)`` until a writeback invalidates it;
:class:`ObjectInput` publishes an arbitrary object once per drain
(the Build operand context).  Workers keep a small LRU of quantized
panel operands keyed by coordinator-unique handle uids — recomputing
``panel_operand`` per worker is deterministic, so caching is purely a
perf matter and never changes results.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np
import scipy.linalg

from repro.precision.formats import Precision
from repro.precision.quantize import quantize
from repro.tiles.tile import Tile

# NOTE: kernel functions (tile_potrf & co.) are imported inside the
# descriptors' run() methods: this module is imported by
# repro.linalg.cholesky itself, so a module-level import of
# repro.linalg.kernels would be circular.  Workers pay the lookup once
# per task, which is noise next to the BLAS call.

__all__ = [
    "ALL_SPEC_KINDS",
    "BodySpec",
    "BuildRowSpec",
    "CgMatvecSpec",
    "DenseGemmSpec",
    "GemmTrailSpec",
    "ObjectInput",
    "PotrfSpec",
    "ProcessTaskSpec",
    "SolveGemmSpec",
    "SolveTrsmSpec",
    "SyrkSpec",
    "TileInput",
    "TrsmSpec",
    "cached_operand",
]


# ----------------------------------------------------------------------
# coordinator-side input descriptions (never pickled)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TileInput:
    """One tile argument, faulted in via ``matrix.get_tile(*coords)``.

    ``writeback=True`` marks the tile this task's ``on_complete``
    rewrites; the coordinator invalidates its published copy when the
    task completes so later readers republish the fresh value.
    """

    matrix: object
    coords: tuple
    writeback: bool = False


@dataclass(frozen=True)
class ObjectInput:
    """An arbitrary payload published once per drain under ``key``."""

    obj: object
    key: str


@dataclass(frozen=True)
class ProcessTaskSpec:
    """Everything the process executor needs to run one task remotely."""

    body: "BodySpec"
    mode: str = "handles"  #: "handles" | "aux" | "both"
    aux: tuple = ()
    #: Coordinator-side completion callback receiving the worker's
    #: outputs (store-backed paths write tiles back through the store).
    on_complete: object | None = None


# ----------------------------------------------------------------------
# worker-local quantized-operand cache
# ----------------------------------------------------------------------
_OPERAND_CACHE: OrderedDict = OrderedDict()
_OPERAND_CACHE_MAX = 96


def cached_operand(key: int, precision: Precision, tile: Tile):
    """Worker-local memo of ``panel_operand(tile, precision)``.

    ``key`` is a coordinator-assigned handle uid (globally unique and
    never rebound to different data within the handle's lifetime), so
    entries can never go stale.  The computation is deterministic, so a
    miss recomputes the exact same operand any other worker holds.
    """
    from repro.linalg.kernels import panel_operand

    cache_key = (key, precision)
    got = _OPERAND_CACHE.get(cache_key)
    if got is None:
        got = panel_operand(tile.to_float64(), precision)
        _OPERAND_CACHE[cache_key] = got
        if len(_OPERAND_CACHE) > _OPERAND_CACHE_MAX:
            _OPERAND_CACHE.popitem(last=False)
    else:
        _OPERAND_CACHE.move_to_end(cache_key)
    return got


def clear_operand_cache() -> None:
    _OPERAND_CACHE.clear()


# ----------------------------------------------------------------------
# body descriptors
# ----------------------------------------------------------------------
class BodySpec:
    """Base class for picklable task bodies (``run(*inputs)``)."""

    def run(self, *args):  # pragma: no cover - abstract
        raise NotImplementedError


@dataclass(frozen=True)
class PotrfSpec(BodySpec):
    """Diagonal Cholesky: ``A(k,k) -> chol(A(k,k))`` at ``wp``."""

    wp: Precision

    def run(self, a: Tile) -> Tile:
        from repro.linalg.kernels import tile_potrf

        return Tile(tile_potrf(a.to_float64(), precision=self.wp),
                    precision=self.wp, coords=a.coords)


@dataclass(frozen=True)
class TrsmSpec(BodySpec):
    """Panel solve ``L(i,k) = A(i,k) L(k,k)^-T`` stored at ``storage``."""

    wp: Precision
    storage: Precision

    def run(self, lkk: Tile, aik: Tile) -> Tile:
        from repro.linalg.kernels import tile_trsm

        lik = tile_trsm(lkk.to_float64(), aik.to_float64(),
                        precision=self.wp, side="right", trans=True)
        return Tile(lik, precision=self.storage, coords=aik.coords)


@dataclass(frozen=True)
class SyrkSpec(BodySpec):
    """Trailing diagonal update ``A(i,i) -= L(i,k) L(i,k)^T`` at ``p``."""

    p: Precision
    key_ik: int

    def run(self, lik: Tile, aii: Tile) -> Tile:
        from repro.linalg.kernels import tile_syrk

        out = tile_syrk(cached_operand(self.key_ik, self.p, lik),
                        aii.to_float64(), precision=self.p,
                        alpha=-1.0, beta=1.0)
        return Tile(out, precision=self.p, coords=aii.coords)


@dataclass(frozen=True)
class GemmTrailSpec(BodySpec):
    """Trailing update ``A(i,j) -= L(i,k) L(j,k)^T`` at ``p``."""

    p: Precision
    key_ik: int
    key_jk: int

    def run(self, lik: Tile, ljk: Tile, aij: Tile) -> Tile:
        from repro.linalg.kernels import tile_gemm

        out = tile_gemm(cached_operand(self.key_ik, self.p, lik),
                        cached_operand(self.key_jk, self.p, ljk),
                        aij.to_float64(), precision=self.p,
                        alpha=-1.0, beta=1.0, transb=True)
        return Tile(out, precision=self.p, coords=aij.coords)


@dataclass(frozen=True)
class SolveGemmSpec(BodySpec):
    """Solve block update ``acc -= op(L[coords]) @ xj`` + quantize."""

    precision: Precision
    transpose_tile: bool
    transpose_op: bool

    def run(self, xj: np.ndarray, acc: np.ndarray, lij: Tile) -> np.ndarray:
        l64 = lij.to_float64()
        if self.transpose_tile:
            l64 = l64.T
        if self.transpose_op:
            l64 = l64.T
        acc = acc - l64 @ xj
        return np.asarray(quantize(acc, self.precision), dtype=np.float64)


@dataclass(frozen=True)
class SolveTrsmSpec(BodySpec):
    """Diagonal triangular solve of one right-hand-side row block."""

    precision: Precision
    transpose: bool
    lower_solve: bool

    def run(self, acc: np.ndarray, diag: Tile) -> np.ndarray:
        d64 = diag.to_float64()
        if self.transpose:
            d64 = d64.T
        out = scipy.linalg.solve_triangular(d64, acc, lower=self.lower_solve)
        return np.asarray(quantize(out, self.precision), dtype=np.float64)


@dataclass(frozen=True)
class BuildRowSpec(BodySpec):
    """One kernel-matrix row band of the Build phase.

    Receives the prepared operand context (quantized SNP/confounder
    blocks) as its single aux input and recomputes the fused
    gram/distance/Gaussian row band — the exact arithmetic of
    ``KernelBuilder._kernel_rows``.
    """

    gamma: float
    snp_block: int
    row_start: int
    row_stop: int
    col_end: int

    def run(self, ctx) -> np.ndarray:
        from repro.distance.build import compute_kernel_rows

        return compute_kernel_rows(
            ctx, self.gamma, self.snp_block,
            slice(self.row_start, self.row_stop), slice(0, self.col_end))


@dataclass(frozen=True)
class CgMatvecSpec(BodySpec):
    """One tile row of the CG kernel matvec ``(K + alpha*I) @ v``.

    Receives the full FP64 vector/panel handle (plus its unwritten
    output handle) and the row's *stored* kernel tiles as aux inputs,
    in ascending column order; ``transposes[j]`` marks symmetric
    upper-triangle columns whose stored lower tile is multiplied
    through a transposed view.  The accumulation order is the bitwise
    contract shared with the closure body in :mod:`repro.linalg.cg`.
    """

    alpha: float
    row_start: int
    row_stop: int
    transposes: tuple = ()

    def run(self, v: np.ndarray, _out, *tiles: Tile) -> np.ndarray:
        acc = self.alpha * v[self.row_start:self.row_stop]
        c0 = 0
        for j, tile in enumerate(tiles):
            t64 = tile.float64_values()
            if j < len(self.transposes) and self.transposes[j]:
                t64 = t64.T
            width = t64.shape[1]
            acc = acc + t64 @ v[c0:c0 + width]
            c0 += width
        return acc


@dataclass(frozen=True)
class DenseGemmSpec(BodySpec):
    """Tiled mixed-precision GEMM of two dense operands (blas3 path)."""

    tile_size: int
    precision: Precision
    transa: bool
    transb: bool

    def run(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        from repro.linalg.blas3 import gemm

        return gemm(a, b, tile_size=self.tile_size, precision=self.precision,
                    transa=self.transa, transb=self.transb)


#: Every descriptor kind the insertion sites emit — the pickle
#: round-trip test asserts coverage against this tuple.
ALL_SPEC_KINDS = (
    PotrfSpec,
    TrsmSpec,
    SyrkSpec,
    GemmTrailSpec,
    SolveGemmSpec,
    SolveTrsmSpec,
    BuildRowSpec,
    CgMatvecSpec,
    DenseGemmSpec,
)
