"""Shared-memory tile exchange between the coordinator and workers.

Only :class:`PayloadRef` descriptors travel over the control pipe; the
payload bytes themselves land in one of two arenas:

``seg`` (default)
    Per-producer append-only *segment files* in a shared temporary
    directory, mmap'd by readers.  This mirrors the out-of-core store's
    spill segments: the bytes written are the exact native-precision
    encoding of each tile (see :mod:`repro.parallel.payload`), so the
    file contents double as the zero-copy wire format.
``shm`` (``REPRO_EXCHANGE=shm``)
    Chunked ``multiprocessing.shared_memory`` blocks for hosts where
    the temp filesystem is unsuitable (e.g. a slow network mount).

Each producer (the coordinator and every worker) appends to its own
segment, so no write ever races another; readers locate bytes by
``(segment, offset, length)`` and the coordinator guarantees, through
DAG ordering, that a ref is only read after its producer flushed it.

Between drains the coordinator broadcasts a reset: writers truncate
their segments and every reader drops its mmap/attach and decode
caches, so exchange storage does not grow across phases.
"""

from __future__ import annotations

import mmap
import os
from collections import OrderedDict
from dataclasses import dataclass
from multiprocessing import shared_memory

from repro.parallel.payload import decode_obj, encode_obj

__all__ = [
    "EXCHANGE_ARENAS",
    "EXCHANGE_ENV",
    "ExchangeSpec",
    "PayloadRef",
    "TileExchange",
    "resolve_exchange_arena",
]

EXCHANGE_ENV = "REPRO_EXCHANGE"
EXCHANGE_ARENAS = ("seg", "shm")

#: Shared-memory blocks are allocated in chunks of this size.
_SHM_CHUNK = 4 << 20

#: Decoded-payload LRU entries kept per reader.  Bounds memory while
#: keeping hot panel tiles (read by every task in a trailing update)
#: decoded exactly once per process.
_DECODE_CACHE_MAX = 64


def resolve_exchange_arena(arena: str | None = None) -> str:
    """Resolve the exchange arena from the argument or ``REPRO_EXCHANGE``."""
    if arena is None:
        arena = os.environ.get(EXCHANGE_ENV) or "seg"
    if arena not in EXCHANGE_ARENAS:
        raise ValueError(
            f"exchange arena must be one of {EXCHANGE_ARENAS}, got {arena!r}"
            f" (set {EXCHANGE_ENV} or the arena argument accordingly)")
    return arena


@dataclass(frozen=True)
class ExchangeSpec:
    """Picklable description of an exchange, shipped to workers.

    ``untrack_attach`` controls the pre-3.13 ``shared_memory`` resource
    tracker workaround.  Forked workers inherit the coordinator's
    tracker (the pool pre-starts it), so register/unregister traffic
    lands in one shared cache — attaches must then *not* be
    unregistered, or they cancel the creator's entry and the creator's
    later unlink trips a tracker KeyError.  Spawned workers own private
    trackers, so there the attach-side registration is spurious and
    must be dropped, or a worker exit unlinks blocks it merely read.
    """

    arena: str
    directory: str | None = None
    untrack_attach: bool = False


@dataclass(frozen=True)
class PayloadRef:
    """Locator of one encoded payload inside an arena."""

    segment: str  #: segment file path ("seg") or shm block name ("shm")
    offset: int
    length: int
    kind: str  #: payload kind (see repro.parallel.payload)
    meta: tuple  #: small metadata items, e.g. (("precision", "fp32"), ...)

    def meta_dict(self) -> dict:
        return dict(self.meta)


# ----------------------------------------------------------------------
# segment-file arena
# ----------------------------------------------------------------------
class _SegmentWriter:
    def __init__(self, path: str) -> None:
        self.path = path
        self._file = open(path, "ab")

    def append(self, data: bytes) -> tuple[str, int, int]:
        offset = self._file.tell()
        self._file.write(data)
        self._file.flush()
        return self.path, offset, len(data)

    def reset(self) -> None:
        self._file.truncate(0)
        self._file.seek(0)

    def close(self) -> None:
        try:
            self._file.close()
        except OSError:  # pragma: no cover - close is best effort
            pass


class _SegmentReader:
    def __init__(self) -> None:
        self._maps: dict[str, mmap.mmap] = {}

    def read(self, segment: str, offset: int, length: int) -> bytes:
        if length == 0:
            return b""
        end = offset + length
        mapped = self._maps.get(segment)
        if mapped is None or len(mapped) < end:
            # The producer's segment grew past our last mapping (or we
            # never mapped it): re-map the whole file.  The producer
            # flushed before publishing the ref, so `end` is on disk.
            with open(segment, "rb") as f:
                remapped = mmap.mmap(f.fileno(), 0, access=mmap.ACCESS_READ)
            if mapped is not None:
                mapped.close()
            self._maps[segment] = remapped
            mapped = remapped
        return mapped[offset:end]

    def clear(self) -> None:
        for mapped in self._maps.values():
            mapped.close()
        self._maps.clear()


# ----------------------------------------------------------------------
# multiprocessing.shared_memory arena
# ----------------------------------------------------------------------
def _untrack_shm(shm: shared_memory.SharedMemory) -> None:
    """Stop a *private* resource tracker from unlinking an attached block.

    Before Python 3.13 every attach registers the block with the
    resource tracker; a process-private tracker (spawned workers) then
    unlinks it when its owner exits, destroying data the worker merely
    read.  Ownership here is explicit — the creating process unlinks —
    so drop the spurious registration.  Only called when
    ``ExchangeSpec.untrack_attach`` is set: with a fork-shared tracker
    the unregister would instead cancel the creator's entry.
    """
    try:  # pragma: no cover - tracker internals are version-dependent
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


class _ShmWriter:
    def __init__(self, tag: str) -> None:
        self.tag = tag
        self._blocks: list[shared_memory.SharedMemory] = []
        self._current: shared_memory.SharedMemory | None = None
        self._offset = 0
        self._sequence = 0

    def append(self, data: bytes) -> tuple[str, int, int]:
        need = len(data)
        if (self._current is None
                or self._offset + need > self._current.size):
            self._sequence += 1
            block = shared_memory.SharedMemory(
                name=f"{self.tag}-{self._sequence}", create=True,
                size=max(_SHM_CHUNK, need or 1))
            self._blocks.append(block)
            self._current = block
            self._offset = 0
        block, offset = self._current, self._offset
        block.buf[offset:offset + need] = data
        self._offset = offset + need
        return block.name, offset, need

    def reset(self) -> None:
        for block in self._blocks:
            block.close()
            try:
                block.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
        self._blocks.clear()
        self._current = None
        self._offset = 0

    close = reset


class _ShmReader:
    def __init__(self, untrack_attach: bool = False) -> None:
        self._blocks: dict[str, shared_memory.SharedMemory] = {}
        self._untrack_attach = untrack_attach

    def read(self, segment: str, offset: int, length: int) -> bytes:
        if length == 0:
            return b""
        block = self._blocks.get(segment)
        if block is None:
            block = shared_memory.SharedMemory(name=segment, create=False)
            if self._untrack_attach:
                _untrack_shm(block)
            self._blocks[segment] = block
        return bytes(block.buf[offset:offset + length])

    def clear(self) -> None:
        for block in self._blocks.values():
            block.close()
        self._blocks.clear()


# ----------------------------------------------------------------------
# facade
# ----------------------------------------------------------------------
class TileExchange:
    """One process's endpoint of the exchange (producer + reader)."""

    def __init__(self, spec: ExchangeSpec, producer_tag: str) -> None:
        self.spec = spec
        self.producer_tag = producer_tag
        if spec.arena == "seg":
            if spec.directory is None:
                raise ValueError("segment-file exchange needs a directory")
            path = os.path.join(spec.directory, f"{producer_tag}.seg")
            self._writer = _SegmentWriter(path)
            self._reader = _SegmentReader()
        elif spec.arena == "shm":
            self._writer = _ShmWriter(f"rx-{producer_tag}-{os.getpid()}")
            self._reader = _ShmReader(untrack_attach=spec.untrack_attach)
        else:
            raise ValueError(
                f"exchange arena must be one of {EXCHANGE_ARENAS}, "
                f"got {spec.arena!r}")
        self._decoded: OrderedDict[tuple, object] = OrderedDict()

    # -- producer side -------------------------------------------------
    def put(self, obj: object) -> PayloadRef:
        kind, meta, raw = encode_obj(obj)
        segment, offset, length = self._writer.append(raw)
        return PayloadRef(segment=segment, offset=offset, length=length,
                          kind=kind, meta=tuple(sorted(meta.items())))

    # -- reader side ---------------------------------------------------
    def get(self, ref: PayloadRef) -> object:
        key = (ref.segment, ref.offset, ref.length, ref.kind)
        if key in self._decoded:
            self._decoded.move_to_end(key)
            return self._decoded[key]
        raw = self._reader.read(ref.segment, ref.offset, ref.length)
        obj = decode_obj(ref.kind, ref.meta_dict(), raw)
        self._decoded[key] = obj
        if len(self._decoded) > _DECODE_CACHE_MAX:
            self._decoded.popitem(last=False)
        return obj

    # -- lifecycle -----------------------------------------------------
    def reset(self) -> None:
        """Truncate this producer's segment and drop all reader state.

        Refs published before a reset are invalid after it; the
        coordinator only resets between drains, when no refs are live.
        """
        self._writer.reset()
        self._reader.clear()
        self._decoded.clear()

    def close(self) -> None:
        self._writer.close()
        self._reader.clear()
        self._decoded.clear()
