"""Worker-process entry point of the process backend.

Each worker owns one duplex pipe to the coordinator and one
:class:`~repro.parallel.exchange.TileExchange` endpoint.  The protocol
is deliberately tiny:

coordinator → worker
    ``("task", uid, body_spec, input_refs, fault_key)`` — run one task;
    ``("reset", )`` — end of drain: truncate the segment, drop caches;
    ``("stop", )`` — clean shutdown.
worker → coordinator
    ``("ok", uid, output_refs)`` or ``("err", uid, exc_blob)``.

Workers re-resolve the ``REPRO_FAULTS`` plan from their own
environment (fork/spawn inherits it) with fresh per-process counters —
the dedicated ``worker-kill`` site lets chaos tests hard-kill a worker
mid-task via ``os._exit``, which the coordinator observes as a closed
pipe and treats as a transient :class:`WorkerCrashError`.

BLAS thread capping: the pool exports ``*_NUM_THREADS=<cap>`` before
spawning (effective for ``spawn`` children, whose BLAS loads fresh),
and the bootstrap additionally applies ``threadpoolctl`` when it is
installed — the only way to re-limit an already-loaded BLAS under
``fork``.  threadpoolctl is optional; without it a forked worker
inherits the parent's BLAS thread count.
"""

from __future__ import annotations

import os
import pickle
import traceback

from repro.parallel.descriptors import clear_operand_cache
from repro.parallel.exchange import ExchangeSpec, PayloadRef, TileExchange
from repro.resilience import faults
from repro.resilience.errors import RemoteTaskError

__all__ = ["dump_exception", "load_exception", "worker_main"]

_BLAS_ENV_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
    "BLIS_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
)

#: Exit code of a fault-injected worker kill (distinguishable from
#: crashes in post-mortem logs; the coordinator treats both the same).
KILLED_EXIT_CODE = 23


# ----------------------------------------------------------------------
# exception transport
# ----------------------------------------------------------------------
def dump_exception(exc: BaseException) -> tuple:
    """Encode a worker-side exception for the pipe.

    Pickled round-trip when possible; otherwise a text descriptor that
    the coordinator rebuilds as :class:`RemoteTaskError`, preserving
    the ``transient`` marker the retry machinery consults.
    """
    try:
        blob = pickle.dumps(exc)
        pickle.loads(blob)
        return ("pickle", blob)
    except Exception:
        transient = bool(getattr(exc, "transient", isinstance(exc, OSError)))
        return ("text", type(exc).__name__, str(exc), transient,
                traceback.format_exc())


def load_exception(blob: tuple) -> BaseException:
    """Invert :func:`dump_exception` on the coordinator side."""
    if blob[0] == "pickle":
        try:
            return pickle.loads(blob[1])
        except Exception:  # pragma: no cover - dump side pre-validated
            pass
        blob = ("text", "UnknownError", "undecodable worker exception",
                False, "")
    _, name, message, transient, tb = blob
    return RemoteTaskError(name, message, transient, tb)


# ----------------------------------------------------------------------
# bootstrap
# ----------------------------------------------------------------------
def _limit_blas_threads(limit: int) -> None:
    for var in _BLAS_ENV_VARS:
        os.environ[var] = str(limit)
    try:
        from threadpoolctl import threadpool_limits

        threadpool_limits(limits=int(limit))
    except Exception:
        # threadpoolctl is optional; under `spawn` the env vars above
        # already cap BLAS (it loads after them), under `fork` a loaded
        # BLAS keeps the parent's setting.
        pass


def _bootstrap(blas_threads: int) -> None:
    _limit_blas_threads(blas_threads)
    # A fork can capture locks and cached fault plans mid-operation
    # (e.g. the store prefetch thread holding the env-plan lock):
    # rebuild the module state so this process starts clean, with its
    # own injection counters.
    faults.reset_child_state()
    clear_operand_cache()


# ----------------------------------------------------------------------
# main loop
# ----------------------------------------------------------------------
def worker_main(worker_id: int, tag: str, conn, spec: ExchangeSpec,
                blas_threads: int) -> None:
    _bootstrap(blas_threads)
    exchange = TileExchange(spec, producer_tag=tag)
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            op = message[0]
            if op == "task":
                _, uid, body, refs, fault_key = message
                plan = faults.active_plan()
                if (plan is not None and
                        plan.fire(faults.SITE_WORKER_KILL, fault_key)
                        is not None):
                    os._exit(KILLED_EXIT_CODE)
                try:
                    args = [exchange.get(r) if isinstance(r, PayloadRef)
                            else None for r in refs]
                    out = body.run(*args)
                    outs = out if isinstance(out, tuple) else (out,)
                    out_refs = tuple(
                        exchange.put(o) if o is not None else None
                        for o in outs)
                    conn.send(("ok", uid, out_refs))
                except BaseException as exc:  # noqa: BLE001 - shipped back
                    try:
                        conn.send(("err", uid, dump_exception(exc)))
                    except (OSError, ValueError):
                        break
            elif op == "reset":
                exchange.reset()
                clear_operand_cache()
            elif op == "stop":
                break
    finally:
        exchange.close()
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass
