"""Worker-process pool of the process backend.

Owns worker lifecycles (spawn, respawn-after-crash, clean shutdown),
the pipe per worker, the shared exchange directory, and the BLAS
thread budget: each worker is capped to
``max(1, effective_cpu_count() // workers)`` BLAS threads (override
with ``REPRO_BLAS_THREADS``) so ``workers × blas_threads`` never
oversubscribes the machine — the classic failure mode of nesting an
OpenMP BLAS under a process pool.

The multiprocessing start method defaults to ``fork`` (cheap, shares
the parent's loaded BLAS and imported modules) and can be forced with
``REPRO_MP_START=spawn|forkserver`` on platforms where fork is
hazardous.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import shutil
import tempfile

from repro.parallel.exchange import ExchangeSpec, TileExchange, resolve_exchange_arena
from repro.parallel.worker import _BLAS_ENV_VARS, worker_main

__all__ = [
    "BLAS_THREADS_ENV",
    "MP_START_ENV",
    "ProcessPool",
    "effective_cpu_count",
]

MP_START_ENV = "REPRO_MP_START"
BLAS_THREADS_ENV = "REPRO_BLAS_THREADS"


def effective_cpu_count() -> int:
    """CPUs actually available to this process.

    ``os.cpu_count()`` reports the machine, not the cgroup/affinity
    mask a CI runner or batch scheduler grants — ``sched_getaffinity``
    is authoritative where it exists.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _resolve_blas_threads(workers: int) -> int:
    env = os.environ.get(BLAS_THREADS_ENV)
    if env:
        value = int(env)
        if value < 1:
            raise ValueError(
                f"{BLAS_THREADS_ENV} must be an integer >= 1, got {env!r}")
        return value
    return max(1, effective_cpu_count() // max(1, workers))


def _resolve_start_method(method: str | None) -> str:
    if method is None:
        method = os.environ.get(MP_START_ENV) or "fork"
    if method not in mp.get_all_start_methods():
        raise ValueError(
            f"{MP_START_ENV} must be one of {mp.get_all_start_methods()}, "
            f"got {method!r}")
    return method


class _WorkerHandle:
    __slots__ = ("process", "conn", "tag", "generation")

    def __init__(self, process, conn, tag: str, generation: int) -> None:
        self.process = process
        self.conn = conn
        self.tag = tag
        self.generation = generation

    @property
    def alive(self) -> bool:
        return self.process.is_alive()


class ProcessPool:
    """A fixed-size pool of task workers plus the coordinator exchange."""

    def __init__(self, workers: int, arena: str | None = None,
                 start_method: str | None = None,
                 blas_threads: int | None = None) -> None:
        self.workers = max(1, int(workers))
        self.blas_threads = (int(blas_threads) if blas_threads
                             else _resolve_blas_threads(self.workers))
        method = _resolve_start_method(start_method)
        self._ctx = mp.get_context(method)
        arena = resolve_exchange_arena(arena)
        directory = None
        if arena == "seg":
            directory = tempfile.mkdtemp(prefix="repro-xchg-")
        if arena == "shm":
            # Pre-start the resource tracker so every worker shares it
            # (fork inherits the fd, spawn receives it in the
            # preparation data): with one tracker, attach-registration
            # is an idempotent set-add and the creator's single unlink
            # unregisters cleanly (see ExchangeSpec.untrack_attach).
            try:  # pragma: no cover - tracker availability varies
                from multiprocessing import resource_tracker

                resource_tracker.ensure_running()
            except Exception:
                pass
        self.spec = ExchangeSpec(arena=arena, directory=directory,
                                 untrack_attach=False)
        #: Coordinator endpoint: publishes task inputs, reads outputs.
        self.exchange = TileExchange(self.spec, producer_tag="c0")
        self._handles: list[_WorkerHandle | None] = [None] * self.workers
        self._respawns = 0
        self._closed = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        for index in range(self.workers):
            if self._handles[index] is None:
                self._handles[index] = self._spawn(index, generation=0)

    def _spawn(self, index: int, generation: int) -> _WorkerHandle:
        tag = f"w{index}g{generation}"
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        # Exported before the fork/spawn so a `spawn` child's BLAS
        # (loaded after env inheritance) starts capped; restored so the
        # coordinator's own BLAS budget is untouched.
        saved = {var: os.environ.get(var) for var in _BLAS_ENV_VARS}
        for var in _BLAS_ENV_VARS:
            os.environ[var] = str(self.blas_threads)
        try:
            process = self._ctx.Process(
                target=worker_main,
                args=(index, tag, child_conn, self.spec, self.blas_threads),
                name=f"repro-worker-{index}",
                daemon=True)
            process.start()
        finally:
            for var, value in saved.items():
                if value is None:
                    os.environ.pop(var, None)
                else:
                    os.environ[var] = value
        child_conn.close()
        return _WorkerHandle(process, parent_conn, tag, generation)

    def respawn(self, index: int) -> None:
        """Replace a dead (or wedged) worker with a fresh process."""
        handle = self._handles[index]
        generation = 0
        if handle is not None:
            generation = handle.generation + 1
            if handle.process.is_alive():
                handle.process.terminate()
            handle.process.join(timeout=5.0)
            try:
                handle.conn.close()
            except OSError:  # pragma: no cover
                pass
        self._respawns += 1
        self._handles[index] = self._spawn(index, generation)

    def reset_all(self) -> None:
        """Panic button: replace every worker and reset the exchange.

        Used when a drain aborts abnormally (e.g. KeyboardInterrupt)
        with tasks still in flight — stale in-flight replies must never
        leak into the next drain.
        """
        for index in range(self.workers):
            if self._handles[index] is not None:
                self.respawn(index)
        self.exchange.reset()

    def end_drain(self) -> None:
        """Reset exchange state on both sides between drains."""
        self.exchange.reset()
        for handle in self._handles:
            if handle is not None and handle.alive:
                try:
                    handle.conn.send(("reset",))
                except OSError:  # pragma: no cover - picked up on dispatch
                    pass

    def shutdown(self) -> None:
        if self._closed:
            return
        self._closed = True
        for handle in self._handles:
            if handle is None:
                continue
            try:
                if handle.alive:
                    handle.conn.send(("stop",))
            except OSError:
                pass
        for handle in self._handles:
            if handle is None:
                continue
            handle.process.join(timeout=2.0)
            if handle.process.is_alive():  # pragma: no cover - stragglers
                handle.process.terminate()
                handle.process.join(timeout=2.0)
            try:
                handle.conn.close()
            except OSError:  # pragma: no cover
                pass
        self._handles = [None] * self.workers
        self.exchange.close()
        if self.spec.directory is not None:
            shutil.rmtree(self.spec.directory, ignore_errors=True)

    # ------------------------------------------------------------------
    # accessors the executor uses
    # ------------------------------------------------------------------
    @property
    def respawns(self) -> int:
        """Workers respawned after crashes/timeouts (chaos tests assert
        coverage through this counter)."""
        return self._respawns

    @property
    def closed(self) -> bool:
        return self._closed

    def conn(self, index: int):
        return self._handles[index].conn

    def is_alive(self, index: int) -> bool:
        handle = self._handles[index]
        return handle is not None and handle.alive

    def exitcode(self, index: int):
        handle = self._handles[index]
        return None if handle is None else handle.process.exitcode

    def send(self, index: int, message: tuple) -> None:
        self._handles[index].conn.send(message)
