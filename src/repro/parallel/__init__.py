"""Process-parallel (GIL-free) execution backend.

``repro.parallel`` turns the task runtime's DAG drain into a
coordinator/worker architecture over OS processes, selected via
``Scheduler(execution="process")`` / ``KRRConfig(execution="process")``
/ ``REPRO_EXECUTION=process``:

* the **coordinator** (the caller's process) keeps the task graph,
  dependency tracking, store pin/prefetch hooks and trace accounting,
  and ships only picklable *task descriptors* plus payload references
  over a pipe;
* **workers** execute task bodies GIL-free and exchange tile payloads
  through mmap'd segment files — the same native-precision byte format
  the out-of-core store spills (bitwise-exact from FP64 down to the
  1-byte FP8 codes) — with ``multiprocessing.shared_memory`` as the
  store-less fallback arena (``REPRO_EXCHANGE=shm``).

Execution is bitwise identical to ``execution="serial"`` for any
worker count: every ordering constraint is an explicit dependency
edge, task bodies are pure, and the exchange codec round-trips each
payload exactly.  Worker crashes are transient faults in the
PR-6 resilience taxonomy: the coordinator respawns the worker and
retries the task under the configured
:class:`~repro.resilience.retry.RetryPolicy`, folding permanent
failures into :class:`~repro.resilience.errors.TaskGroupError`.
"""

from repro.parallel.descriptors import (
    ALL_SPEC_KINDS,
    BodySpec,
    BuildRowSpec,
    DenseGemmSpec,
    GemmTrailSpec,
    ObjectInput,
    PotrfSpec,
    ProcessTaskSpec,
    SolveGemmSpec,
    SolveTrsmSpec,
    SyrkSpec,
    TileInput,
    TrsmSpec,
)
from repro.parallel.exchange import (
    EXCHANGE_ENV,
    EXCHANGE_ARENAS,
    ExchangeSpec,
    PayloadRef,
    TileExchange,
    resolve_exchange_arena,
)
from repro.parallel.pool import (
    BLAS_THREADS_ENV,
    MP_START_ENV,
    ProcessPool,
    effective_cpu_count,
)

__all__ = [
    "ALL_SPEC_KINDS",
    "BLAS_THREADS_ENV",
    "BodySpec",
    "BuildRowSpec",
    "DenseGemmSpec",
    "EXCHANGE_ARENAS",
    "EXCHANGE_ENV",
    "ExchangeSpec",
    "GemmTrailSpec",
    "MP_START_ENV",
    "ObjectInput",
    "PayloadRef",
    "PotrfSpec",
    "ProcessPool",
    "ProcessTaskSpec",
    "SolveGemmSpec",
    "SolveTrsmSpec",
    "SyrkSpec",
    "TileExchange",
    "TileInput",
    "TrsmSpec",
    "effective_cpu_count",
    "resolve_exchange_arena",
]
