"""Bitwise-exact payload codec for the process-parallel tile exchange.

Workers and the coordinator never pickle tile *data* — numeric payloads
cross the process boundary as raw native-precision bytes, produced by
the same :mod:`repro.tiles.serialize` codecs the out-of-core store uses
for spill segments (FP64/FP32/FP16 native dtypes, BF16 as the high
uint16 halves, FP8 as 1-byte E4M3/E5M2 codes).  Those codecs are exact
inverses of each other, which is what makes ``execution="process"``
bitwise identical to the serial drain: a tile decoded in a worker is
the same array of floats the coordinator held, down to the last bit.

Three payload kinds plus a pickle escape hatch:

``tile``
    :class:`~repro.tiles.tile.Tile` — encoded payload bytes + small
    (precision, shape, coords) metadata.
``array``
    ``numpy.ndarray`` — contiguous raw bytes + (dtype, shape).
``none``
    ``None`` — zero bytes (released throttle rows, sync tokens).
``pickle``
    Anything else (e.g. the Build operand context) via pickle.
"""

from __future__ import annotations

import pickle

import numpy as np

from repro.precision.formats import Precision
from repro.tiles.serialize import decode_payload, encode_payload
from repro.tiles.tile import Tile

__all__ = [
    "KIND_ARRAY",
    "KIND_NONE",
    "KIND_PICKLE",
    "KIND_TILE",
    "decode_obj",
    "encode_obj",
]

KIND_NONE = "none"
KIND_TILE = "tile"
KIND_ARRAY = "array"
KIND_PICKLE = "pickle"

#: On-the-wire dtype of ``encode_payload`` for each storage precision.
_ENCODED_DTYPE = {
    Precision.FP64: np.dtype(np.float64),
    Precision.FP32: np.dtype(np.float32),
    Precision.FP16: np.dtype(np.float16),
    Precision.BF16: np.dtype(np.uint16),
    Precision.FP8_E4M3: np.dtype(np.uint8),
    Precision.FP8_E5M2: np.dtype(np.uint8),
    Precision.INT8: np.dtype(np.int8),
    Precision.INT32: np.dtype(np.int32),
}


def encode_obj(obj: object) -> tuple[str, dict, bytes]:
    """Encode one task input/output as ``(kind, meta, raw bytes)``."""
    if obj is None:
        return KIND_NONE, {}, b""
    if isinstance(obj, Tile):
        raw = np.ascontiguousarray(encode_payload(obj.data, obj.precision))
        meta = {
            "precision": obj.precision.value,
            "shape": tuple(obj.data.shape),
            "coords": obj.coords,
        }
        return KIND_TILE, meta, raw.tobytes()
    if isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        return KIND_ARRAY, {"dtype": arr.dtype.str,
                            "shape": tuple(arr.shape)}, arr.tobytes()
    return KIND_PICKLE, {}, pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


def decode_obj(kind: str, meta: dict, buf: bytes) -> object:
    """Exact inverse of :func:`encode_obj`."""
    if kind == KIND_NONE:
        return None
    if kind == KIND_TILE:
        precision = Precision(meta["precision"])
        raw = np.frombuffer(buf, dtype=_ENCODED_DTYPE[precision])
        raw = raw.reshape(meta["shape"])
        coords = meta["coords"]
        data = decode_payload(raw, precision)
        return Tile(data, precision=precision,
                    coords=tuple(coords) if coords is not None else None)
    if kind == KIND_ARRAY:
        arr = np.frombuffer(buf, dtype=np.dtype(meta["dtype"]))
        # frombuffer views are read-only; consumers (e.g. the Build
        # consume step's fill_diagonal) may write, so take ownership.
        return arr.reshape(meta["shape"]).copy()
    if kind == KIND_PICKLE:
        return pickle.loads(buf)
    raise ValueError(f"unknown payload kind {kind!r}")
