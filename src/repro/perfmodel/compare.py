"""Cross-system comparison and the REGENIE headroom ratio (Sec. VII-F).

Two headline comparisons close the paper's evaluation:

* **Fig. 14e** — the Associate/Build/KRR throughput achieved on the
  four systems at the paper's scales (Leonardo 4,096 GPUs, Summit
  18,432, Frontier 36,100, Alps 8,100), topping out at 2.109 ExaOp/s
  for the Build phase and 1.805 ExaOp/s for the full KRR on Alps.
* **The REGENIE ratio** — crediting the CPU-only REGENIE with the full
  theoretical peak of a dual-socket AMD Genoa node (7.372 TFlop/s), the
  mixed-precision KRR solver's sustained 1.805 ExaOp/s is about five
  orders of magnitude faster.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.perfmodel.scaling import MachineModel, PhaseEstimate
from repro.perfmodel.systems import (
    SHAHEEN3_CPU_NODE_PEAK,
    SYSTEM_REGISTRY,
    SystemSpec,
)
from repro.precision.formats import Precision

__all__ = ["SystemComparisonRow", "system_comparison", "regenie_comparison"]


#: Low precision used by the Associate phase per system in the paper
#: (FP16 floor before Hopper, FP8 on Alps).
_SYSTEM_LOW_PRECISION = {
    "Summit": Precision.FP16,
    "Leonardo": Precision.FP16,
    "Frontier": Precision.FP16,
    "Alps": Precision.FP8_E4M3,
}

#: GPU counts of the paper's largest runs (Fig. 14e).
_PAPER_GPU_COUNTS = {
    "Summit": 18_432,
    "Leonardo": 4_096,
    "Frontier": 36_100,
    "Alps": 8_100,
}


@dataclass(frozen=True)
class SystemComparisonRow:
    """One row of the Fig. 14e-style comparison."""

    system: str
    n_gpus: int
    matrix_size: int
    build_pflops: float
    associate_pflops: float
    krr_pflops: float

    def as_dict(self) -> dict[str, float | int | str]:
        return {
            "system": self.system,
            "n_gpus": self.n_gpus,
            "matrix_size": self.matrix_size,
            "build_pflops": self.build_pflops,
            "associate_pflops": self.associate_pflops,
            "krr_pflops": self.krr_pflops,
        }


def system_comparison(systems: dict[str, SystemSpec] | None = None,
                      gpu_counts: dict[str, int] | None = None,
                      snp_ratio: float = 1.5,
                      bytes_per_element: float = 2.5) -> list[SystemComparisonRow]:
    """Fig. 14e: Build/Associate/KRR throughput across systems.

    Each system runs the largest problem fitting its aggregate device
    memory at the paper's GPU count; Alps additionally uses the FP8
    floor, the other systems FP16.
    """
    systems = systems or dict(SYSTEM_REGISTRY)
    gpu_counts = gpu_counts or dict(_PAPER_GPU_COUNTS)
    rows: list[SystemComparisonRow] = []
    for key, spec in systems.items():
        name = spec.name
        n_gpus = gpu_counts.get(name, spec.paper_gpus)
        model = MachineModel(system=spec)
        n = model.matrix_size_for_memory(n_gpus, bytes_per_element=bytes_per_element)
        low = _SYSTEM_LOW_PRECISION.get(name, Precision.FP16)
        estimates = model.krr_estimate(n, int(round(snp_ratio * n)), n_gpus,
                                       low_precision=low)
        rows.append(SystemComparisonRow(
            system=name,
            n_gpus=n_gpus,
            matrix_size=n,
            build_pflops=estimates["build"].throughput / 1e15,
            associate_pflops=estimates["associate"].throughput / 1e15,
            krr_pflops=estimates["krr"].throughput / 1e15,
        ))
    rows.sort(key=lambda r: r.krr_pflops)
    return rows


@dataclass(frozen=True)
class RegenieComparison:
    """The Sec. VII-F headroom comparison against CPU REGENIE."""

    krr_throughput: float
    regenie_throughput: float

    @property
    def speedup(self) -> float:
        return self.krr_throughput / self.regenie_throughput

    @property
    def orders_of_magnitude(self) -> float:
        return float(np.log10(self.speedup))


def regenie_comparison(krr_throughput: float | None = None,
                       cpu_peak: float = SHAHEEN3_CPU_NODE_PEAK) -> RegenieComparison:
    """Compare the KRR solver's sustained throughput against REGENIE's ceiling.

    Parameters
    ----------
    krr_throughput:
        Sustained mixed-precision op/s of the KRR workflow; defaults to
        the model's Alps estimate at the paper's scale.
    cpu_peak:
        Throughput credited to REGENIE (the full theoretical peak of a
        dual-socket AMD Genoa 9654 node, as the paper generously does).
    """
    if krr_throughput is None:
        rows = system_comparison()
        alps = next(r for r in rows if r.system == "Alps")
        krr_throughput = alps.krr_pflops * 1e15
    return RegenieComparison(krr_throughput=float(krr_throughput),
                             regenie_throughput=float(cpu_peak))
