"""Performance model for the supercomputer-scale experiments.

The paper's performance figures (Figs. 7–14) report PFlop/s of the
Build and Associate phases on Summit, Leonardo, Frontier and Alps at up
to 36,100 GPUs.  Those machines are not available here, so this package
provides an analytic machine model that regenerates the figures:

* :mod:`repro.perfmodel.gpus` — GPU generation specs (peak tensor-core
  throughput per precision, memory bandwidth/capacity) plus sustained
  per-GPU rates for the tiled Cholesky and the distance SYRK,
  calibrated against the per-GPU numbers published in the paper.
* :mod:`repro.perfmodel.systems` — system specs (GPU counts, network).
* :mod:`repro.perfmodel.flops` — operation counts of the GWAS phases.
* :mod:`repro.perfmodel.scaling` — the distributed execution-time model
  (compute + communication) producing weak/strong scaling series.
* :mod:`repro.perfmodel.compare` — cross-system comparison and the
  REGENIE headroom ratio of Sec. VII-F.

Absolute numbers are calibrated; the *shapes* — which precision wins,
by what factor, how efficiency decays with node count — emerge from the
op counts, byte counts and the communication model.
"""

from repro.perfmodel.gpus import GPU_REGISTRY, GPUSpec, gpu
from repro.perfmodel.systems import SYSTEM_REGISTRY, SystemSpec, system
from repro.perfmodel.flops import (
    associate_flops,
    build_flops,
    krr_flops,
    predict_flops,
)
from repro.perfmodel.scaling import (
    MachineModel,
    PhaseEstimate,
    ScalingPoint,
    strong_scaling_series,
    weak_scaling_series,
)
from repro.perfmodel.compare import regenie_comparison, system_comparison

__all__ = [
    "GPUSpec",
    "gpu",
    "GPU_REGISTRY",
    "SystemSpec",
    "system",
    "SYSTEM_REGISTRY",
    "build_flops",
    "associate_flops",
    "predict_flops",
    "krr_flops",
    "MachineModel",
    "PhaseEstimate",
    "ScalingPoint",
    "weak_scaling_series",
    "strong_scaling_series",
    "regenie_comparison",
    "system_comparison",
]
