"""System (supercomputer) specifications.

The four GPU systems of the paper plus the CPU system used for the
REGENIE comparison:

=========  =========  ==============  ===========================
System     Device     GPUs/node       Scale used in the paper
=========  =========  ==============  ===========================
Summit     V100       6               18,432 GPUs (2/3 of system)
Leonardo   A100       4               4,096 GPUs (1/3)
Frontier   MI250X     8 (GCDs)        36,100 GCDs (nearly full)
Alps       GH200      4               8,100 superchips (4/5)
Shaheen-3  CPU node   —               1 dual-socket AMD Genoa node
=========  =========  ==============  ===========================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perfmodel.gpus import A100, GH200, GPUSpec, MI250X, V100

__all__ = ["SystemSpec", "SYSTEM_REGISTRY", "system", "SHAHEEN3_CPU_NODE_PEAK"]

#: Theoretical peak of one dual-socket 96-core AMD Genoa 9654 node of
#: Shaheen-3 (the CPU REGENIE is credited with in Sec. VII-F), in flop/s.
SHAHEEN3_CPU_NODE_PEAK = 7.372e12


@dataclass(frozen=True)
class SystemSpec:
    """One GPU system.

    Attributes
    ----------
    name:
        System name.
    gpu:
        Device spec of its accelerators.
    gpus_per_node:
        Accelerators (or GCDs) per node.
    total_gpus:
        Full-system accelerator count.
    paper_gpus:
        Number of accelerators used in the paper's largest run.
    link_bandwidth:
        Effective per-GPU data-movement bandwidth available to the tile
        algorithm (bytes/s).  This is *not* the NIC injection bandwidth
        alone: most tile traffic in a 2D block-cyclic layout stays
        within the node (NVLink / xGMI), so the effective figure is
        calibrated so that the model reproduces each system's measured
        Associate-phase throughput at the paper's node counts.
    link_latency:
        Per-message network latency (s).
    """

    name: str
    gpu: GPUSpec
    gpus_per_node: int
    total_gpus: int
    paper_gpus: int
    link_bandwidth: float
    link_latency: float = 5.0e-6

    @property
    def total_nodes(self) -> int:
        return self.total_gpus // self.gpus_per_node

    def nodes_for_gpus(self, n_gpus: int) -> int:
        return max(1, -(-n_gpus // self.gpus_per_node))

    def memory_for_gpus(self, n_gpus: int) -> float:
        """Aggregate device memory (bytes) of ``n_gpus`` accelerators."""
        return n_gpus * self.gpu.memory_capacity


SUMMIT = SystemSpec(
    name="Summit",
    gpu=V100,
    gpus_per_node=6,
    total_gpus=27_648,
    paper_gpus=18_432,
    link_bandwidth=4.5e10,
)

LEONARDO = SystemSpec(
    name="Leonardo",
    gpu=A100,
    gpus_per_node=4,
    total_gpus=13_824,
    paper_gpus=4_096,
    link_bandwidth=6.0e10,
)

FRONTIER = SystemSpec(
    name="Frontier",
    gpu=MI250X,
    gpus_per_node=8,          # 8 GCDs per node
    total_gpus=75_264,
    paper_gpus=36_100,
    link_bandwidth=5.0e10,
)

ALPS = SystemSpec(
    name="Alps",
    gpu=GH200,
    gpus_per_node=4,
    total_gpus=10_752,
    paper_gpus=8_100,
    link_bandwidth=50.0e9,   # Slingshot-11, 4 NICs per node
)

SYSTEM_REGISTRY: dict[str, SystemSpec] = {
    "SUMMIT": SUMMIT,
    "LEONARDO": LEONARDO,
    "FRONTIER": FRONTIER,
    "ALPS": ALPS,
}


def system(name: str) -> SystemSpec:
    """Look up a system spec by name (case-insensitive)."""
    key = name.upper()
    if key not in SYSTEM_REGISTRY:
        raise ValueError(f"unknown system {name!r}; available: {sorted(SYSTEM_REGISTRY)}")
    return SYSTEM_REGISTRY[key]
