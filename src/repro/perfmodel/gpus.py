"""GPU generation specifications.

Peak throughputs are the published tensor-core / matrix-core peaks of
each device.  ``sustained_associate`` and ``sustained_build`` are
node-level sustained per-GPU rates of the tiled mixed-precision
Cholesky (Associate) and the INT8 distance SYRK (Build) — calibrated
from the per-GPU throughputs reported in the paper (Sec. VII-C/D:
~57 TFlop/s per A100 for FP64/FP16, ~159 TFlop/s per GH200 for
FP32/FP8, ~316 TFlop/s per GH200 for the Build phase, ...).  The
calibration encodes how much of the peak each precision keeps once the
operation becomes memory- and communication-bound; the *scaling*
behaviour on top of these rates comes from the model in
:mod:`repro.perfmodel.scaling`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.precision.formats import Precision

__all__ = ["GPUSpec", "GPU_REGISTRY", "gpu"]


@dataclass(frozen=True)
class GPUSpec:
    """One GPU (or GPU-like accelerator) generation.

    Attributes
    ----------
    name:
        Device name.
    peak:
        Peak throughput (op/s) per precision, tensor/matrix cores where
        available.
    memory_bandwidth:
        HBM bandwidth in bytes/s.
    memory_capacity:
        Device memory in bytes.
    sustained_associate:
        Sustained per-GPU rate (op/s) of the tiled mixed-precision
        Cholesky, keyed by the *lower* precision of the mix
        (e.g. ``Precision.FP16`` for an FP32/FP16 or FP64/FP16 run).
    sustained_build:
        Sustained per-GPU rate of the INT8/FP32 distance SYRK.
    fp8_capable:
        True for Hopper-class devices (enables the FP8 floor in the
        adaptive precision rule).
    """

    name: str
    peak: dict[Precision, float]
    memory_bandwidth: float
    memory_capacity: float
    sustained_associate: dict[Precision, float] = field(default_factory=dict)
    sustained_build: float = 0.0
    fp8_capable: bool = False

    def peak_for(self, precision: Precision) -> float:
        if precision in self.peak:
            return self.peak[precision]
        if precision is Precision.BF16 and Precision.FP16 in self.peak:
            return self.peak[Precision.FP16]
        if precision is Precision.FP8_E5M2 and Precision.FP8_E4M3 in self.peak:
            return self.peak[Precision.FP8_E4M3]
        if precision is Precision.INT32 and Precision.INT8 in self.peak:
            return self.peak[Precision.INT8]
        return self.peak.get(Precision.FP32, 1.0e13)

    def sustained_associate_for(self, low_precision: Precision) -> float:
        """Sustained Cholesky rate for a mix whose low precision is given."""
        if low_precision in self.sustained_associate:
            return self.sustained_associate[low_precision]
        if (low_precision in (Precision.FP8_E4M3, Precision.FP8_E5M2)
                and not self.fp8_capable):
            # FP8 requested on non-FP8 hardware falls back to FP16
            return self.sustained_associate.get(
                Precision.FP16, 0.3 * self.peak_for(Precision.FP16))
        # default: 30% of the precision's peak (typical tile-Cholesky fraction)
        return 0.3 * self.peak_for(low_precision)


# ----------------------------------------------------------------------
# Device registry.  Peaks: published vendor numbers; sustained rates:
# calibrated against the paper's per-GPU measurements.
# ----------------------------------------------------------------------
V100 = GPUSpec(
    name="V100",
    peak={
        Precision.FP64: 7.8e12,
        Precision.FP32: 15.7e12,
        Precision.FP16: 125.0e12,
        Precision.INT8: 62.0e12,
    },
    memory_bandwidth=0.9e12,
    memory_capacity=16e9,
    sustained_associate={
        # Summit Fig. 8c: ~154 PF on 6144 GPUs (FP64/FP16) and ~62 PF (FP64/FP32)
        Precision.FP16: 25.0e12,
        Precision.FP32: 10.0e12,
        Precision.FP64: 4.0e12,
    },
    sustained_build=22.0e12,
)

A100 = GPUSpec(
    name="A100",
    peak={
        Precision.FP64: 19.5e12,   # FP64 tensor core
        Precision.FP32: 19.5e12,   # FP32 CUDA-core rate (FP64 TC == FP32 on A100)
        Precision.FP16: 312.0e12,
        Precision.FP8_E4M3: 312.0e12,  # no native FP8: falls back to FP16 rate
        Precision.INT8: 624.0e12,
    },
    memory_bandwidth=2.0e12,
    memory_capacity=64e9,
    sustained_associate={
        # Leonardo Fig. 9c / Fig. 11a: ~243 PF on 4096 GPUs -> ~59 TF/GPU
        # for FP64/FP16 and ~3.6x less for FP64/FP32.
        Precision.FP16: 59.0e12,
        Precision.FP32: 16.5e12,
        Precision.FP64: 16.5e12,
    },
    sustained_build=150.0e12,
)

MI250X = GPUSpec(
    name="MI250X",
    peak={
        Precision.FP64: 47.9e12,
        Precision.FP32: 47.9e12,
        Precision.FP16: 383.0e12,
        Precision.INT8: 383.0e12,
    },
    memory_bandwidth=3.2e12,
    memory_capacity=128e9,
    sustained_associate={
        # Frontier appears in Fig. 14e with 977 PF on 36,100 GCDs -> ~27 TF/GCD
        Precision.FP16: 27.0e12,
        Precision.FP32: 13.0e12,
        Precision.FP64: 13.0e12,
    },
    sustained_build=35.0e12,
)

GH200 = GPUSpec(
    name="GH200",
    peak={
        Precision.FP64: 67.0e12,
        Precision.FP32: 67.0e12,
        Precision.FP16: 990.0e12,
        Precision.FP8_E4M3: 1979.0e12,
        Precision.INT8: 1979.0e12,
    },
    memory_bandwidth=4.0e12,
    memory_capacity=96e9,
    sustained_associate={
        # Alps Fig. 10c / Fig. 12a: ~667 PF (FP32/FP8) and ~440 PF
        # (FP32/FP16) on 4096 GPUs -> ~163 / ~107 TF per GPU; FP32-only
        # is ~4.8x below FP8.
        Precision.FP8_E4M3: 163.0e12,
        Precision.FP16: 107.0e12,
        Precision.FP32: 34.0e12,
        Precision.FP64: 17.0e12,
    },
    # Fig. 7: ~420 TF/GPU at low node counts for the INT8 Build SYRK
    # (107 PF on 256 GPUs); the decline to ~316 TF/GPU at 4096 GPUs
    # emerges from the communication model.
    sustained_build=420.0e12,
    fp8_capable=True,
)

GPU_REGISTRY: dict[str, GPUSpec] = {
    "V100": V100,
    "A100": A100,
    "MI250X": MI250X,
    "GH200": GH200,
}


def gpu(name: str) -> GPUSpec:
    """Look up a GPU spec by name (case-insensitive)."""
    key = name.upper()
    if key not in GPU_REGISTRY:
        raise ValueError(f"unknown GPU {name!r}; available: {sorted(GPU_REGISTRY)}")
    return GPU_REGISTRY[key]
