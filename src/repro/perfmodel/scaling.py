"""Distributed execution-time model (weak/strong scaling).

The model combines three ingredients:

* **per-GPU sustained rates** for the Build SYRK and the Associate
  Cholesky, taken from :class:`~repro.perfmodel.gpus.GPUSpec`
  (calibrated against the paper's measured per-GPU throughputs);
* **operation counts** from :mod:`repro.perfmodel.flops`;
* a **communication model** for the 2D block-cyclic tile Cholesky /
  SYRK: the per-GPU communication volume grows as
  ``c · log2(P) · N² · bytes / sqrt(P)`` and is partially overlapped
  with computation (PaRSEC's asynchronous execution), so the exposed
  communication time is ``max(0, T_comm − overlap · T_comp)``.

Two consequences match the paper's observations (Sec. VII-D): weak
scaling stays near-perfect because the per-GPU work grows with the
matrix, while strong scaling efficiency decays with GPU count — and
decays *faster* for lower precisions, whose higher compute rates leave
less computation to hide the same communication behind.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.perfmodel.flops import (
    associate_flops,
    associate_precision_fractions,
    build_flops,
    solve_flops,
)
from repro.perfmodel.systems import SystemSpec, system as system_lookup
from repro.precision.formats import Precision

__all__ = [
    "PhaseEstimate",
    "ScalingPoint",
    "MachineModel",
    "weak_scaling_series",
    "strong_scaling_series",
]


@dataclass(frozen=True)
class PhaseEstimate:
    """Time/throughput estimate of one phase at one configuration."""

    phase: str
    matrix_size: int
    n_gpus: int
    flops: float
    compute_time: float
    comm_time: float
    exposed_comm_time: float

    @property
    def time(self) -> float:
        return self.compute_time + self.exposed_comm_time

    @property
    def throughput(self) -> float:
        """Sustained op/s (the paper's "mixed-precision flop/s")."""
        return self.flops / self.time if self.time > 0 else 0.0

    @property
    def parallel_fraction(self) -> float:
        """Compute share of the total time (1.0 = perfectly hidden comm)."""
        return self.compute_time / self.time if self.time > 0 else 1.0


@dataclass(frozen=True)
class ScalingPoint:
    """One point of a weak/strong scaling series."""

    n_gpus: int
    matrix_size: int
    throughput: float
    time: float
    efficiency: float


@dataclass
class MachineModel:
    """Performance model of one system.

    Parameters
    ----------
    system:
        System spec (or its name).
    tile_size:
        Tile edge used by the tiled algorithms (enters the latency term).
    comm_factor:
        Constant ``c`` of the communication-volume model.
    overlap:
        Fraction of the compute time available to hide communication in
        the Associate phase (PaRSEC's communication/computation overlap).
    build_overlap:
        Same for the Build phase, whose producer/consumer pattern
        (panel broadcast into freshly generated tiles) overlaps less.
    runtime_efficiency:
        Multiplier on the sustained per-GPU rates accounting for
        runtime/scheduling overheads.

    Notes
    -----
    The Associate-phase communication is dominated by the broadcast of
    the TRSM panel, which travels at the *working* precision — so its
    byte count does not shrink with the low precision of the trailing
    updates.  This is exactly why the paper observes the strong-scaling
    efficiency dropping faster for FP16/FP8 runs: the same
    communication has less (faster) computation left to hide behind.
    """

    system: SystemSpec | str
    tile_size: int = 2048
    comm_factor: float = 0.34
    overlap: float = 0.75
    build_overlap: float = 0.0
    runtime_efficiency: float = 1.0

    def __post_init__(self) -> None:
        if isinstance(self.system, str):
            self.system = system_lookup(self.system)
        if self.tile_size <= 0:
            raise ValueError("tile_size must be positive")
        if not 0.0 <= self.overlap <= 1.0:
            raise ValueError("overlap must be in [0, 1]")
        if self.runtime_efficiency <= 0:
            raise ValueError("runtime_efficiency must be positive")

    # ------------------------------------------------------------------
    # communication primitives
    # ------------------------------------------------------------------
    def _comm_time(self, n: int, n_gpus: int, bytes_per_element: float) -> float:
        """Per-GPU communication time of a tile-panel algorithm of order ``n``."""
        sys = self.system
        if n_gpus <= 1:
            return 0.0
        volume = (self.comm_factor * np.log2(n_gpus) * float(n) ** 2
                  * bytes_per_element / np.sqrt(n_gpus))
        bandwidth_time = volume / sys.link_bandwidth
        n_panels = max(n // self.tile_size, 1)
        latency_time = n_panels * np.log2(n_gpus) * sys.link_latency
        return bandwidth_time + latency_time

    @staticmethod
    def _exposed(comm: float, comp: float, overlap: float) -> float:
        return max(0.0, comm - overlap * comp)

    # ------------------------------------------------------------------
    # phases
    # ------------------------------------------------------------------
    def build_estimate(self, n_patients: int, n_snps: int, n_gpus: int) -> PhaseEstimate:
        """Build phase (INT8 distance SYRK + fused kernel exponentiation)."""
        if n_gpus <= 0:
            raise ValueError("n_gpus must be positive")
        gpu = self.system.gpu
        flops = build_flops(n_patients, n_snps)
        rate = gpu.sustained_build * self.runtime_efficiency
        comp = flops / (n_gpus * rate)
        # The G panels (N_P × N_S, INT8-encoded) are broadcast across the
        # process grid; the produced K tiles stay resident with their owner.
        if n_gpus > 1:
            volume = (self.comm_factor * np.log2(n_gpus)
                      * float(n_patients) * float(n_snps) / np.sqrt(n_gpus))
            comm = volume / self.system.link_bandwidth
        else:
            comm = 0.0
        exposed = self._exposed(comm, comp, self.build_overlap)
        return PhaseEstimate("build", n_patients, n_gpus, flops, comp, comm, exposed)

    def associate_estimate(self, n_patients: int, n_gpus: int,
                           low_precision: Precision | str = Precision.FP16,
                           working_precision: Precision | str = Precision.FP32,
                           n_phenotypes: int = 0) -> PhaseEstimate:
        """Associate phase (mixed-precision Cholesky + optional solves)."""
        if n_gpus <= 0:
            raise ValueError("n_gpus must be positive")
        low = Precision.from_string(low_precision)
        work = Precision.from_string(working_precision)
        gpu = self.system.gpu

        flops = associate_flops(n_patients)
        nt = max(n_patients // self.tile_size, 1)
        fractions = associate_precision_fractions(nt, low_precision=low,
                                                  working_precision=work)
        comp = 0.0
        for prec, frac in fractions.items():
            rate = gpu.sustained_associate_for(prec) * self.runtime_efficiency
            comp += frac * flops / (n_gpus * rate)
        if n_phenotypes:
            solve_rate = gpu.sustained_associate_for(work) * self.runtime_efficiency
            comp += solve_flops(n_patients, n_phenotypes) / (n_gpus * solve_rate)

        # panel broadcasts travel at the working precision (see class notes)
        comm = self._comm_time(n_patients, n_gpus, work.bytes_per_element)
        exposed = self._exposed(comm, comp, self.overlap)
        return PhaseEstimate("associate", n_patients, n_gpus, flops, comp, comm, exposed)

    def krr_estimate(self, n_patients: int, n_snps: int, n_gpus: int,
                     low_precision: Precision | str = Precision.FP16,
                     working_precision: Precision | str = Precision.FP32,
                     n_phenotypes: int = 1) -> dict[str, PhaseEstimate]:
        """End-to-end KRR estimates: Build, Associate, and the combined total."""
        build = self.build_estimate(n_patients, n_snps, n_gpus)
        associate = self.associate_estimate(
            n_patients, n_gpus, low_precision, working_precision, n_phenotypes
        )
        total_flops = build.flops + associate.flops
        total = PhaseEstimate(
            phase="krr",
            matrix_size=n_patients,
            n_gpus=n_gpus,
            flops=total_flops,
            compute_time=build.compute_time + associate.compute_time,
            comm_time=build.comm_time + associate.comm_time,
            exposed_comm_time=build.exposed_comm_time + associate.exposed_comm_time,
        )
        return {"build": build, "associate": associate, "krr": total}

    # ------------------------------------------------------------------
    # memory-driven problem sizing (the paper's weak-scaling runs max out
    # device memory)
    # ------------------------------------------------------------------
    def matrix_size_for_memory(self, n_gpus: int, bytes_per_element: float = 2.5,
                               fill: float = 0.85) -> int:
        """Largest symmetric matrix order fitting in ``fill`` of aggregate memory."""
        if not 0.0 < fill <= 1.0:
            raise ValueError("fill must be in (0, 1]")
        total_bytes = self.system.memory_for_gpus(n_gpus) * fill
        n = int(np.sqrt(total_bytes / bytes_per_element))
        # round down to a whole number of tiles
        return max((n // self.tile_size) * self.tile_size, self.tile_size)


def weak_scaling_series(model: MachineModel, gpu_counts: list[int],
                        phase: str = "associate",
                        low_precision: Precision | str = Precision.FP16,
                        working_precision: Precision | str = Precision.FP32,
                        snp_ratio: float = 1.0,
                        bytes_per_element: float = 2.5,
                        fill: float = 0.85) -> list[ScalingPoint]:
    """Weak scaling: matrix size grows with GPU count to keep memory full.

    ``snp_ratio`` sets ``NS = snp_ratio * NP`` for phases involving the
    SNP dimension (the paper's Fig. 13 sweeps ``NS = NP·{1..5}``).
    Efficiency is per-GPU throughput normalized by the first point.
    """
    points: list[ScalingPoint] = []
    base_per_gpu: float | None = None
    for p in gpu_counts:
        n = model.matrix_size_for_memory(p, bytes_per_element, fill)
        est = _phase_estimate(model, phase, n, int(round(snp_ratio * n)), p,
                              low_precision, working_precision)
        per_gpu = est.throughput / p
        if base_per_gpu is None:
            base_per_gpu = per_gpu
        points.append(ScalingPoint(
            n_gpus=p, matrix_size=n, throughput=est.throughput, time=est.time,
            efficiency=per_gpu / base_per_gpu if base_per_gpu else 1.0,
        ))
    return points


def strong_scaling_series(model: MachineModel, gpu_counts: list[int],
                          matrix_size: int,
                          phase: str = "associate",
                          low_precision: Precision | str = Precision.FP16,
                          working_precision: Precision | str = Precision.FP32,
                          snp_ratio: float = 1.0) -> list[ScalingPoint]:
    """Strong scaling: fixed matrix size, growing GPU count.

    Efficiency is speedup over the first point divided by the GPU-count
    ratio (the definition behind Fig. 11b / 12b).
    """
    points: list[ScalingPoint] = []
    base: ScalingPoint | None = None
    for p in gpu_counts:
        est = _phase_estimate(model, phase, matrix_size,
                              int(round(snp_ratio * matrix_size)), p,
                              low_precision, working_precision)
        if base is None:
            eff = 1.0
        else:
            speedup = base.time / est.time if est.time > 0 else 0.0
            eff = speedup / (p / base.n_gpus)
        point = ScalingPoint(
            n_gpus=p, matrix_size=matrix_size, throughput=est.throughput,
            time=est.time, efficiency=eff,
        )
        if base is None:
            base = point
        points.append(point)
    return points


def _phase_estimate(model: MachineModel, phase: str, n: int, ns: int, p: int,
                    low_precision: Precision | str,
                    working_precision: Precision | str = Precision.FP32) -> PhaseEstimate:
    if phase == "build":
        return model.build_estimate(n, ns, p)
    if phase == "associate":
        return model.associate_estimate(n, p, low_precision, working_precision)
    if phase == "krr":
        return model.krr_estimate(n, ns, p, low_precision, working_precision)["krr"]
    raise ValueError("phase must be 'build', 'associate' or 'krr'")
