"""Operation counts of the GWAS phases.

Sec. VI-C of the paper: "MxP SYRK and Cholesky matrix computations
account for most operations with an algorithmic complexity of
``N_P² × N_S`` and ``1/3 × N_P³`` respectively."  These counts drive
both the performance model and the "mixed-precision ExaOp/s" numbers
reported by the paper (operations are counted once regardless of the
precision they execute in).
"""

from __future__ import annotations

from repro.precision.formats import Precision

__all__ = [
    "build_flops",
    "associate_flops",
    "solve_flops",
    "predict_flops",
    "krr_flops",
    "rr_flops",
    "associate_precision_fractions",
    "memory_bytes_kernel_matrix",
]


def build_flops(n_patients: int, n_snps: int) -> float:
    """Build phase: the distance SYRK over the SNP dimension (``N_P²·N_S``)."""
    return float(n_patients) ** 2 * float(n_snps)


def associate_flops(n_patients: int) -> float:
    """Associate phase: the Cholesky factorization (``N_P³/3``)."""
    return float(n_patients) ** 3 / 3.0


def solve_flops(n_patients: int, n_phenotypes: int) -> float:
    """Triangular solves for the weight panel (``2·N_P²·N_Ph``)."""
    return 2.0 * float(n_patients) ** 2 * float(n_phenotypes)


def predict_flops(n_test: int, n_train: int, n_snps: int, n_phenotypes: int) -> float:
    """Predict phase: cross kernel build plus ``K_test @ W``."""
    return (2.0 * float(n_test) * float(n_train) * float(n_snps)
            + 2.0 * float(n_test) * float(n_train) * float(n_phenotypes))


def krr_flops(n_patients: int, n_snps: int, n_phenotypes: int = 1,
              n_test: int = 0) -> float:
    """Total KRR workflow operation count (Build + Associate + solves [+ Predict])."""
    total = (build_flops(n_patients, n_snps)
             + associate_flops(n_patients)
             + solve_flops(n_patients, n_phenotypes))
    if n_test:
        total += predict_flops(n_test, n_patients, n_snps, n_phenotypes)
    return total


def rr_flops(n_patients: int, n_features: int, n_phenotypes: int = 1) -> float:
    """Ridge regression: SYRK (``N_P·N_S²``) + Cholesky (``N_S³/3``) + solves."""
    return (float(n_patients) * float(n_features) ** 2
            + float(n_features) ** 3 / 3.0
            + 2.0 * float(n_features) ** 2 * float(n_phenotypes))


def associate_precision_fractions(n_tiles: int,
                                  low_precision: Precision = Precision.FP16,
                                  working_precision: Precision = Precision.FP32,
                                  ) -> dict[Precision, float]:
    """Fraction of Associate-phase operations per precision.

    With the adaptive mosaic all off-diagonal GEMM updates run in the
    low precision while POTRF/TRSM/SYRK panel work stays in the working
    precision.  For an ``nt × nt`` tile grid, the GEMM share of the
    Cholesky operation count is ``(nt-1)(nt-2)/(nt² + ...) → 1`` as
    ``nt`` grows; the exact tile-level ratio is computed here.
    """
    nt = max(int(n_tiles), 1)
    # per-tile op counts in tile units (nb³): potrf ~ 1/3, trsm ~ 1,
    # syrk ~ 1, gemm ~ 2 (counted per k-step)
    potrf = nt * (1.0 / 3.0)
    trsm = nt * (nt - 1) / 2.0
    syrk = nt * (nt - 1) / 2.0
    gemm = nt * (nt - 1) * (nt - 2) / 6.0 * 2.0
    total = potrf + trsm + syrk + gemm
    if total <= 0:
        return {working_precision: 1.0}
    high = (potrf + trsm + syrk) / total
    low = gemm / total
    if low_precision == working_precision:
        return {working_precision: 1.0}
    return {working_precision: high, low_precision: low}


def memory_bytes_kernel_matrix(n_patients: int, tile_fractions: dict[Precision, float],
                               symmetric: bool = True) -> float:
    """Storage footprint of the kernel matrix under a precision mix.

    ``tile_fractions`` maps each storage precision to the fraction of
    tiles stored in it (e.g. the output of the adaptive rule).  Used for
    the memory-footprint-reduction accounting the paper highlights.
    """
    n = float(n_patients)
    elements = n * (n + 1) / 2.0 if symmetric else n * n
    total_fraction = sum(tile_fractions.values())
    if total_fraction <= 0:
        raise ValueError("tile_fractions must contain positive fractions")
    bytes_per_element = sum(
        (frac / total_fraction) * p.bytes_per_element
        for p, frac in tile_fractions.items()
    )
    return elements * bytes_per_element
