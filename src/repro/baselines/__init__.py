"""Baseline GWAS methods the paper compares against or builds upon.

* :mod:`repro.baselines.univariate` — the classical per-SNP association
  scan (one linear test per SNP with multiple-testing correction), the
  "dominant approach" the paper's introduction contrasts with
  multivariate methods.
* :mod:`repro.baselines.regenie` — a REGENIE-like stacked block-ridge
  whole-genome regression (the state-of-the-art CPU software the paper
  compares throughput against in Sec. VII-F).
* :mod:`repro.baselines.lmm` — a simple GRM-based linear mixed model
  (the BOLT-LMM / fastGWA family), included for completeness of the
  related-work methods of Sec. IV.
"""

from repro.baselines.univariate import UnivariateGWAS, UnivariateResult
from repro.baselines.regenie import RegenieLikeRegression, RegenieConfig
from repro.baselines.lmm import GRMLinearMixedModel, genetic_relationship_matrix

__all__ = [
    "UnivariateGWAS",
    "UnivariateResult",
    "RegenieLikeRegression",
    "RegenieConfig",
    "GRMLinearMixedModel",
    "genetic_relationship_matrix",
]
