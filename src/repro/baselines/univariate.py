"""Univariate (per-SNP) GWAS association testing.

The "dominant approach in GWAS" per the paper's introduction: each SNP
is tested independently for association with the trait, ignoring
interactions between loci.  We implement the standard per-SNP simple
linear regression with optional covariate adjustment, returning effect
sizes, t statistics, p-values, and Bonferroni-corrected significance —
the machinery whose Type-I-error weaknesses under linkage
disequilibrium motivate the multivariate approach.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

__all__ = ["UnivariateResult", "UnivariateGWAS"]


@dataclass
class UnivariateResult:
    """Per-SNP association scan results.

    Attributes
    ----------
    betas, standard_errors, t_statistics, p_values:
        One entry per SNP.
    significant:
        Boolean mask of SNPs passing the Bonferroni threshold.
    threshold:
        The Bonferroni-corrected significance level used.
    """

    betas: np.ndarray
    standard_errors: np.ndarray
    t_statistics: np.ndarray
    p_values: np.ndarray
    significant: np.ndarray
    threshold: float

    @property
    def n_significant(self) -> int:
        return int(np.sum(self.significant))

    def top_hits(self, k: int = 10) -> np.ndarray:
        """Indices of the ``k`` most significant SNPs."""
        k = min(k, self.p_values.size)
        return np.argsort(self.p_values)[:k]


class UnivariateGWAS:
    """Per-SNP linear association testing with covariate adjustment.

    Parameters
    ----------
    alpha:
        Family-wise significance level before Bonferroni correction.
    """

    def __init__(self, alpha: float = 0.05) -> None:
        if not 0.0 < alpha < 1.0:
            raise ValueError("alpha must be in (0, 1)")
        self.alpha = alpha

    # ------------------------------------------------------------------
    @staticmethod
    def _residualize(y: np.ndarray, covariates: np.ndarray | None) -> np.ndarray:
        """Project out covariates (with intercept) from ``y``."""
        n = y.shape[0]
        if covariates is None or covariates.size == 0:
            return y - y.mean(axis=0, keepdims=True) if y.ndim > 1 else y - y.mean()
        c = np.column_stack([np.ones(n), np.asarray(covariates, dtype=np.float64)])
        coef, *_ = np.linalg.lstsq(c, y, rcond=None)
        return y - c @ coef

    def scan(self, genotypes: np.ndarray, phenotype: np.ndarray,
             covariates: np.ndarray | None = None) -> UnivariateResult:
        """Run the per-SNP scan for one phenotype.

        Parameters
        ----------
        genotypes:
            ``n × ns`` dosage matrix.
        phenotype:
            Length-``n`` phenotype vector.
        covariates:
            Optional confounders regressed out of both the phenotype and
            each SNP before testing (the standard adjusted model).
        """
        g = np.asarray(genotypes, dtype=np.float64)
        y = np.asarray(phenotype, dtype=np.float64).ravel()
        n, ns = g.shape
        if y.shape[0] != n:
            raise ValueError("phenotype length must match the number of individuals")
        if n < 4:
            raise ValueError("at least 4 individuals are required for testing")

        y_res = self._residualize(y, covariates)
        g_res = self._residualize(g, covariates)

        g_centered = g_res - g_res.mean(axis=0, keepdims=True)
        y_centered = y_res - y_res.mean()

        sxx = np.einsum("ij,ij->j", g_centered, g_centered)
        sxy = g_centered.T @ y_centered
        # guard monomorphic SNPs
        sxx_safe = np.where(sxx > 0, sxx, 1.0)
        betas = np.where(sxx > 0, sxy / sxx_safe, 0.0)

        residuals = y_centered[:, None] - g_centered * betas[None, :]
        dof = max(n - 2 - (0 if covariates is None else covariates.shape[1]), 1)
        sigma2 = np.einsum("ij,ij->j", residuals, residuals) / dof
        se = np.sqrt(np.where(sxx > 0, sigma2 / sxx_safe, np.inf))

        with np.errstate(divide="ignore", invalid="ignore"):
            t_stats = np.where(se > 0, betas / se, 0.0)
        p_values = 2.0 * stats.t.sf(np.abs(t_stats), dof)
        p_values = np.where(sxx > 0, p_values, 1.0)

        threshold = self.alpha / ns
        return UnivariateResult(
            betas=betas,
            standard_errors=se,
            t_statistics=t_stats,
            p_values=p_values,
            significant=p_values < threshold,
            threshold=threshold,
        )

    def scan_multivariate(self, genotypes: np.ndarray, phenotypes: np.ndarray,
                          covariates: np.ndarray | None = None) -> list[UnivariateResult]:
        """Run the scan independently for each phenotype column."""
        phenotypes = np.asarray(phenotypes, dtype=np.float64)
        if phenotypes.ndim == 1:
            phenotypes = phenotypes[:, None]
        return [self.scan(genotypes, phenotypes[:, k], covariates)
                for k in range(phenotypes.shape[1])]
