"""GRM-based linear mixed model (BOLT-LMM / fastGWA family, simplified).

Linear mixed models are "the preferred tool in GWAS" (Sec. IV of the
paper) because the random effect modeled through the Genotype
Relationship Matrix (GRM) absorbs population structure and relatedness.
We implement the standard two-variance-component model

    y = X_c b + g + e,     g ~ N(0, σ_g² · GRM),   e ~ N(0, σ_e² · I)

with REML-free variance estimation by maximizing the profiled
log-likelihood over the heritability ratio on a grid (the
eigen-decomposition trick: one spectral decomposition of the GRM makes
every candidate ratio cheap), followed by BLUP prediction for new
individuals via the train/test GRM cross-block.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["genetic_relationship_matrix", "GRMLinearMixedModel"]


def genetic_relationship_matrix(genotypes: np.ndarray,
                                reference: np.ndarray | None = None) -> np.ndarray:
    """The standard GRM: ``Z Z_refᵀ / ns`` on standardized genotypes.

    With ``reference=None`` returns the square training GRM; otherwise
    the cross-GRM between ``genotypes`` (rows) and ``reference`` rows,
    standardized with the *reference* allele frequencies — the block
    needed for BLUP prediction of new individuals.
    """
    ref = np.asarray(reference if reference is not None else genotypes,
                     dtype=np.float64)
    g = np.asarray(genotypes, dtype=np.float64)
    if g.shape[1] != ref.shape[1]:
        raise ValueError("SNP panels must match")
    mean = ref.mean(axis=0)
    std = ref.std(axis=0)
    std[std == 0] = 1.0
    z = (g - mean) / std
    z_ref = (ref - mean) / std
    return z @ z_ref.T / g.shape[1]


@dataclass
class GRMLinearMixedModel:
    """Single-random-effect LMM with grid-profiled heritability.

    Parameters
    ----------
    heritability_grid:
        Candidate values of ``h² = σ_g² / (σ_g² + σ_e²)`` evaluated on
        the profiled likelihood.
    """

    heritability_grid: tuple[float, ...] = tuple(np.linspace(0.05, 0.95, 19))

    def __post_init__(self) -> None:
        self._fitted = False

    # ------------------------------------------------------------------
    def fit(self, genotypes: np.ndarray, phenotype: np.ndarray,
            covariates: np.ndarray | None = None) -> "GRMLinearMixedModel":
        """Estimate variance components and the fixed effects."""
        g = np.asarray(genotypes, dtype=np.float64)
        y = np.asarray(phenotype, dtype=np.float64).ravel()
        n = g.shape[0]
        if y.shape[0] != n:
            raise ValueError("phenotype length must match the genotype rows")

        x = np.ones((n, 1)) if covariates is None else np.column_stack(
            [np.ones(n), np.asarray(covariates, dtype=np.float64)])

        grm = genetic_relationship_matrix(g)
        # spectral decomposition once; every h2 candidate is then cheap
        evals, evecs = np.linalg.eigh(grm)
        evals = np.maximum(evals, 0.0)
        yt = evecs.T @ y
        xt = evecs.T @ x

        best = None
        for h2 in self.heritability_grid:
            d = h2 * evals + (1.0 - h2)  # rotated covariance diagonal (unit total var)
            w = 1.0 / d
            xtwx = xt.T @ (xt * w[:, None])
            xtwy = xt.T @ (yt * w)
            beta = np.linalg.solve(xtwx, xtwy)
            resid = yt - xt @ beta
            sigma2 = float(resid @ (resid * w)) / n
            # profiled Gaussian log-likelihood (up to constants)
            ll = -0.5 * (n * np.log(sigma2) + np.sum(np.log(d)))
            if best is None or ll > best[0]:
                best = (ll, h2, beta, sigma2)

        _, h2, beta, sigma2 = best
        self.heritability_ = float(h2)
        self.beta_ = beta
        self.sigma2_ = sigma2
        self._train_genotypes = g
        self._train_x = x
        self._train_y = y
        self._grm = grm
        self._fitted = True
        return self

    # ------------------------------------------------------------------
    def predict(self, genotypes: np.ndarray,
                covariates: np.ndarray | None = None) -> np.ndarray:
        """BLUP prediction for new individuals."""
        if not self._fitted:
            raise RuntimeError("fit() must be called before predict()")
        g_new = np.asarray(genotypes, dtype=np.float64)
        n_new = g_new.shape[0]
        x_new = np.ones((n_new, 1)) if covariates is None else np.column_stack(
            [np.ones(n_new), np.asarray(covariates, dtype=np.float64)])
        if x_new.shape[1] != self._train_x.shape[1]:
            raise ValueError("covariates must match the training configuration")

        h2 = self.heritability_
        n = self._train_y.shape[0]
        v = h2 * self._grm + (1.0 - h2) * np.eye(n)
        resid = self._train_y - self._train_x @ self.beta_
        alpha = np.linalg.solve(v, resid)
        k_cross = genetic_relationship_matrix(g_new, reference=self._train_genotypes)
        return x_new @ self.beta_ + h2 * (k_cross @ alpha)

    def fit_predict(self, train_genotypes: np.ndarray, train_phenotype: np.ndarray,
                    test_genotypes: np.ndarray,
                    train_covariates: np.ndarray | None = None,
                    test_covariates: np.ndarray | None = None) -> np.ndarray:
        self.fit(train_genotypes, train_phenotype, train_covariates)
        return self.predict(test_genotypes, test_covariates)
