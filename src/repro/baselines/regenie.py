"""REGENIE-like stacked block ridge regression.

REGENIE (Mbatchou et al., Nature Genetics 2021 — reference [13] of the
paper) is the state-of-the-art CPU whole-genome regression software the
paper compares against.  Its core idea is a two-level *stacked ridge*:

* **Level 0** — partition the genome into contiguous SNP blocks; within
  each block fit ridge regressions at several regularization values and
  keep the per-block predictions as a small set of representative
  variables;
* **Level 1** — fit a second ridge regression (with cross-validated
  regularization) on the stacked level-0 predictions, producing the
  whole-genome predictor.

We implement both levels with a leave-out scheme at level 0 so the
level-1 features are (approximately) out-of-sample, plus a throughput
cost model used by the Sec. VII-F "five orders of magnitude"
comparison.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

__all__ = ["RegenieConfig", "RegenieLikeRegression"]


@dataclass(frozen=True)
class RegenieConfig:
    """Configuration of the stacked ridge regression.

    Parameters
    ----------
    block_size:
        SNPs per level-0 block (REGENIE defaults to ~1000 for millions
        of SNPs; scaled down here).
    level0_ridge_values:
        Regularization grid of the level-0 block ridges; each value
        contributes one representative variable per block.
    level1_ridge_values:
        Regularization grid of the level-1 ridge, selected by K-fold CV.
    n_folds:
        Folds used both for level-0 out-of-fold predictions and level-1
        selection.
    """

    block_size: int = 32
    level0_ridge_values: tuple[float, ...] = (0.1, 1.0, 10.0, 100.0)
    level1_ridge_values: tuple[float, ...] = (0.01, 0.1, 1.0, 10.0, 100.0)
    n_folds: int = 5

    def __post_init__(self) -> None:
        if self.block_size <= 0:
            raise ValueError("block_size must be positive")
        if self.n_folds < 2:
            raise ValueError("n_folds must be at least 2")
        if not self.level0_ridge_values or not self.level1_ridge_values:
            raise ValueError("ridge value grids must be non-empty")


def _ridge_solve(x: np.ndarray, y: np.ndarray, lam: float) -> np.ndarray:
    """Ridge coefficients via the normal equations (small systems)."""
    p = x.shape[1]
    return np.linalg.solve(x.T @ x + lam * np.eye(p), x.T @ y)


class RegenieLikeRegression:
    """Two-level stacked ridge regression (REGENIE-like baseline).

    The model handles a single phenotype per fit (REGENIE also fits one
    trait at a time); use :meth:`fit_multivariate` for a panel.
    """

    def __init__(self, config: RegenieConfig | None = None, **overrides) -> None:
        if config is None:
            config = RegenieConfig()
        if overrides:
            config = dataclasses.replace(config, **overrides)
        self.config = config
        self._level0_betas: list[list[np.ndarray]] = []
        self._level1_beta: np.ndarray | None = None
        self._blocks: list[slice] = []
        self._x_mean: np.ndarray | None = None
        self._x_scale: np.ndarray | None = None
        self._y_mean: float = 0.0

    # ------------------------------------------------------------------
    def _make_blocks(self, n_snps: int) -> list[slice]:
        bs = self.config.block_size
        return [slice(s, min(s + bs, n_snps)) for s in range(0, n_snps, bs)]

    def _standardize(self, g: np.ndarray, fit: bool) -> np.ndarray:
        g = np.asarray(g, dtype=np.float64)
        if fit:
            self._x_mean = g.mean(axis=0)
            scale = g.std(axis=0)
            scale[scale == 0] = 1.0
            self._x_scale = scale
        return (g - self._x_mean) / self._x_scale

    def _fold_indices(self, n: int, seed: int = 0) -> list[np.ndarray]:
        rng = np.random.default_rng(seed)
        return [np.sort(f) for f in np.array_split(rng.permutation(n), self.config.n_folds)]

    # ------------------------------------------------------------------
    def fit(self, genotypes: np.ndarray, phenotype: np.ndarray,
            seed: int = 0) -> "RegenieLikeRegression":
        """Fit the stacked ridge to one phenotype."""
        cfg = self.config
        x = self._standardize(genotypes, fit=True)
        y = np.asarray(phenotype, dtype=np.float64).ravel()
        n, ns = x.shape
        if y.shape[0] != n:
            raise ValueError("phenotype length must match the genotype rows")
        self._y_mean = float(y.mean())
        yc = y - self._y_mean

        self._blocks = self._make_blocks(ns)
        folds = self._fold_indices(n, seed)

        # ----- level 0: per-block ridges, out-of-fold predictions
        n_features = len(self._blocks) * len(cfg.level0_ridge_values)
        level0_pred = np.zeros((n, n_features))
        self._level0_betas = []
        for b, block in enumerate(self._blocks):
            xb = x[:, block]
            betas_per_lambda: list[np.ndarray] = []
            for r, lam in enumerate(cfg.level0_ridge_values):
                col = b * len(cfg.level0_ridge_values) + r
                # out-of-fold level-0 predictions for level-1 training
                for fold in folds:
                    mask = np.ones(n, dtype=bool)
                    mask[fold] = False
                    beta_fold = _ridge_solve(xb[mask], yc[mask], lam)
                    level0_pred[fold, col] = xb[fold] @ beta_fold
                # full-data coefficients used at prediction time
                betas_per_lambda.append(_ridge_solve(xb, yc, lam))
            self._level0_betas.append(betas_per_lambda)

        # ----- level 1: ridge on the stacked predictions, CV over lambda
        best_lambda, best_err = None, np.inf
        for lam in cfg.level1_ridge_values:
            err = 0.0
            for fold in folds:
                mask = np.ones(n, dtype=bool)
                mask[fold] = False
                beta = _ridge_solve(level0_pred[mask], yc[mask], lam)
                resid = yc[fold] - level0_pred[fold] @ beta
                err += float(resid @ resid)
            if err < best_err:
                best_err, best_lambda = err, lam
        self._level1_lambda = float(best_lambda)
        self._level1_beta = _ridge_solve(level0_pred, yc, self._level1_lambda)
        return self

    def predict(self, genotypes: np.ndarray) -> np.ndarray:
        """Whole-genome prediction for new individuals."""
        if self._level1_beta is None:
            raise RuntimeError("fit() must be called before predict()")
        cfg = self.config
        x = self._standardize(genotypes, fit=False)
        n = x.shape[0]
        n_features = len(self._blocks) * len(cfg.level0_ridge_values)
        level0_pred = np.zeros((n, n_features))
        for b, block in enumerate(self._blocks):
            xb = x[:, block]
            for r, beta in enumerate(self._level0_betas[b]):
                col = b * len(cfg.level0_ridge_values) + r
                level0_pred[:, col] = xb @ beta
        return level0_pred @ self._level1_beta + self._y_mean

    def fit_predict(self, train_genotypes: np.ndarray, train_phenotype: np.ndarray,
                    test_genotypes: np.ndarray, seed: int = 0) -> np.ndarray:
        self.fit(train_genotypes, train_phenotype, seed=seed)
        return self.predict(test_genotypes)

    def fit_multivariate(self, genotypes: np.ndarray, phenotypes: np.ndarray,
                         seed: int = 0) -> list["RegenieLikeRegression"]:
        """Fit one stacked ridge per phenotype column; returns the fitted models."""
        phenotypes = np.asarray(phenotypes, dtype=np.float64)
        if phenotypes.ndim == 1:
            phenotypes = phenotypes[:, None]
        models = []
        for k in range(phenotypes.shape[1]):
            model = RegenieLikeRegression(self.config)
            model.fit(genotypes, phenotypes[:, k], seed=seed + k)
            models.append(model)
        return models

    # ------------------------------------------------------------------
    # cost model (for the Sec. VII-F throughput comparison)
    # ------------------------------------------------------------------
    @staticmethod
    def flop_count(n_individuals: int, n_snps: int, block_size: int = 1000,
                   n_ridge_values: int = 5, n_phenotypes: int = 1) -> float:
        """Approximate flop count of a REGENIE run.

        Level 0 is dominated by per-block Gram matrices
        (``n · block_size²`` per block → ``n · ns · block_size`` total)
        plus small block solves; level 1 by the stacked-feature ridge.
        REGENIE's complexity is linear in both ``n`` and ``ns``, the
        property the paper credits it for.
        """
        n_blocks = max(int(np.ceil(n_snps / block_size)), 1)
        n_features = n_blocks * n_ridge_values
        level0 = 2.0 * n_individuals * n_snps * block_size
        level0_solves = n_blocks * n_ridge_values * (block_size ** 3) / 3.0
        level1 = 2.0 * n_individuals * n_features ** 2 + n_features ** 3 / 3.0
        return (level0 + level0_solves + level1) * n_phenotypes
