"""Software-emulated low/mixed precision arithmetic.

The paper's performance comes from NVIDIA tensor cores operating in
INT8, FP8 (E4M3), FP16, FP32 and FP64.  On a CPU-only NumPy stack we
reproduce the *numerical* behaviour of those units — value grids,
rounding, saturation, and accumulation precision — so that every
accuracy result in the paper (precision heatmaps, MSPE comparisons,
Pearson correlations) can be reproduced bit-faithfully at the level of
the stored values.

Public surface
--------------
``Precision``
    Enumeration of the supported formats with their numerical metadata
    (unit roundoff, max finite value, bytes per element).
``quantize`` / ``dequantize_int8``
    Round an array to a given format's value grid.
``gemm_mixed``, ``syrk_mixed``
    Tensor-core-style matrix products: operands quantized to a low
    input precision, accumulation in a (usually wider) compute
    precision, output stored in an output precision.
``GemmVariant``
    Named variants matching the cuBLAS calls used in the paper
    (e.g. ``AB8I_C32I_OP32I``).
"""

from repro.precision.formats import (
    FP8_E4M3_MAX,
    FP8_E5M2_MAX,
    FormatSpec,
    Precision,
    unit_roundoff,
)
from repro.precision.fp8 import quantize_fp8
from repro.precision.quantize import (
    Int8Quantization,
    dequantize_int8,
    quantize,
    quantize_int8,
)
from repro.precision.gemm import (
    EXACT_DGEMM_BOUND,
    EXACT_SGEMM_BOUND,
    GemmVariant,
    QuantizedOperand,
    gemm_mixed,
    gemm_variant,
    integer_backend,
    integer_gemm_dtype,
    set_integer_backend,
    syrk_mixed,
)
from repro.precision.error_model import (
    cholesky_error_bound,
    dot_product_error_bound,
    representable_relative_error,
)

__all__ = [
    "Precision",
    "FormatSpec",
    "unit_roundoff",
    "FP8_E4M3_MAX",
    "FP8_E5M2_MAX",
    "quantize",
    "quantize_fp8",
    "quantize_int8",
    "dequantize_int8",
    "Int8Quantization",
    "GemmVariant",
    "QuantizedOperand",
    "gemm_variant",
    "gemm_mixed",
    "syrk_mixed",
    "integer_backend",
    "set_integer_backend",
    "integer_gemm_dtype",
    "EXACT_DGEMM_BOUND",
    "EXACT_SGEMM_BOUND",
    "dot_product_error_bound",
    "cholesky_error_bound",
    "representable_relative_error",
]
