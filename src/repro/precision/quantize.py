"""Rounding arrays to a target precision's value grid.

``quantize`` is the single entry point used by the tile layer: given an
array and a :class:`~repro.precision.formats.Precision` it returns the
array rounded to that format's representable values.  For formats with
a native NumPy dtype (FP64/FP32/FP16/INT8/INT32) this is a cast; for
BF16 and FP8 it is a software round-to-nearest-even onto the format's
grid, stored back in float32.

INT8 quantization of real-valued data (needed when confounder columns
are pushed through the integer tensor-core path) uses a symmetric
linear scale recorded in :class:`Int8Quantization` so it can be undone
after the integer GEMM.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.precision.formats import Precision
from repro.precision.fp8 import quantize_fp8


def _quantize_bf16(x: np.ndarray) -> np.ndarray:
    """Round float data to the bfloat16 grid (truncate to round-nearest-even)."""
    x32 = np.asarray(x, dtype=np.float32)
    bits = x32.view(np.uint32)
    # round-to-nearest-even on the upper 16 bits
    rounding_bias = ((bits >> 16) & 1) + np.uint32(0x7FFF)
    rounded = (bits + rounding_bias) & np.uint32(0xFFFF0000)
    return rounded.view(np.float32).copy()


def quantize(x: np.ndarray, precision: Precision | str) -> np.ndarray:
    """Round ``x`` onto the value grid of ``precision``.

    The returned array's dtype is the format's storage dtype
    (``float16`` for FP16, ``float32`` for BF16/FP8 grids, ``int8``
    for INT8, ...).  Quantization is value-faithful: converting the
    result back to float64 yields exactly the values low-precision
    hardware would have stored.

    When the input is already on the target grid in the target dtype
    (float64 input for FP64, int8 input for INT8, ...), the input array
    itself may be returned without copying — callers that need an
    independent buffer must copy explicitly.

    For INT8 the input is rounded and clipped to [-128, 127]; use
    :func:`quantize_int8` when a scale factor must be recorded.
    """
    precision = Precision.from_string(precision)
    if precision is Precision.FP64:
        return np.asarray(x, dtype=np.float64)
    if precision is Precision.FP32:
        return np.asarray(x, dtype=np.float32)
    if precision is Precision.FP16:
        x64 = np.asarray(x, dtype=np.float64)
        clipped = np.clip(x64, -precision.max_finite, precision.max_finite)
        return clipped.astype(np.float16)
    if precision is Precision.BF16:
        return _quantize_bf16(x)
    if precision in (Precision.FP8_E4M3, Precision.FP8_E5M2):
        return quantize_fp8(x, precision)
    if precision is Precision.INT8:
        x = np.asarray(x)
        if x.dtype == np.int8:
            return x  # already on the INT8 grid: no float roundtrip
        if np.issubdtype(x.dtype, np.integer):
            return np.clip(x, -128, 127).astype(np.int8)
        x64 = np.asarray(x, dtype=np.float64)
        return np.clip(np.rint(x64), -128, 127).astype(np.int8)
    if precision is Precision.INT32:
        x = np.asarray(x)
        info = np.iinfo(np.int32)
        if x.dtype in (np.int32, np.int8, np.int16, np.uint8, np.uint16):
            return np.asarray(x, dtype=np.int32)  # exactly representable
        if np.issubdtype(x.dtype, np.integer):
            return np.clip(x, info.min, info.max).astype(np.int32)
        x64 = np.asarray(x, dtype=np.float64)
        return np.clip(np.rint(x64), info.min, info.max).astype(np.int32)
    raise ValueError(f"unsupported precision {precision}")


def quantization_error(x: np.ndarray, precision: Precision | str,
                       ord: str | int | None = "fro") -> float:
    """Norm of the error introduced by quantizing ``x`` to ``precision``."""
    x64 = np.asarray(x, dtype=np.float64)
    q = np.asarray(quantize(x64, precision), dtype=np.float64)
    diff = x64 - q
    if diff.ndim == 1:
        return float(np.linalg.norm(diff))
    return float(np.linalg.norm(diff, ord=ord))


@dataclass(frozen=True)
class Int8Quantization:
    """Result of symmetric INT8 quantization of a real-valued array.

    ``values ≈ scale * q`` where ``q`` is the stored int8 array.  The
    scale is chosen so the maximum absolute input maps to 127 (or 1.0
    if the input is all-zero, to avoid division by zero).
    """

    q: np.ndarray
    scale: float

    def dequantize(self) -> np.ndarray:
        """Recover the (approximate) real values as float32."""
        return (self.q.astype(np.float32)) * np.float32(self.scale)


def quantize_int8(x: np.ndarray, scale: float | None = None) -> Int8Quantization:
    """Symmetric linear quantization of ``x`` to INT8.

    SNP genotypes (0/1/2) are already exact INT8 values and take
    ``scale=1``; real-valued confounders use a data-derived scale.

    Parameters
    ----------
    x:
        Input array.
    scale:
        Optional fixed scale; when omitted, ``max(|x|)/127`` is used.
    """
    x64 = np.asarray(x, dtype=np.float64)
    if scale is None:
        max_abs = float(np.max(np.abs(x64))) if x64.size else 0.0
        scale = max_abs / 127.0 if max_abs > 0 else 1.0
    q = np.clip(np.rint(x64 / scale), -128, 127).astype(np.int8)
    return Int8Quantization(q=q, scale=float(scale))


def dequantize_int8(quantized: Int8Quantization) -> np.ndarray:
    """Functional form of :meth:`Int8Quantization.dequantize`."""
    return quantized.dequantize()


def storage_bytes(shape: tuple[int, ...], precision: Precision | str) -> int:
    """Bytes needed to store an array of ``shape`` in ``precision``.

    Used by the memory-footprint accounting (the paper highlights the
    footprint reduction from the FP16/FP8 tile mosaic).
    """
    precision = Precision.from_string(precision)
    n = 1
    for dim in shape:
        n *= int(dim)
    return n * precision.bytes_per_element
