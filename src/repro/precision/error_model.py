"""Rounding-error bounds for the mixed-precision operations.

Implements the standard backward-error bounds (Higham, *Accuracy and
Stability of Numerical Algorithms*) and the mixed-precision bounds of
Higham & Mary (Acta Numerica 2022, reference [19] of the paper) that
justify the tile-centric adaptive precision rule used in the Associate
phase: storing tile ``A_ij`` in a format with unit roundoff ``u_k``
perturbs the global matrix by at most ``u_k * ||A_ij||``, so a tile may
be demoted whenever that perturbation stays below the application's
accuracy target ``eps * ||A||``.
"""

from __future__ import annotations

import numpy as np

from repro.precision.formats import Precision, unit_roundoff


def gamma(n: int, u: float) -> float:
    """Higham's ``gamma_n = n*u / (1 - n*u)`` constant.

    Raises ``ValueError`` when ``n*u >= 1`` (the bound is meaningless:
    the accumulation is too long for the chosen precision).
    """
    nu = n * u
    if nu >= 1.0:
        raise ValueError(
            f"n*u = {nu:.3g} >= 1: accumulation of length {n} cannot be "
            f"bounded in a precision with unit roundoff {u:.3g}"
        )
    return nu / (1.0 - nu)


def dot_product_error_bound(n: int, precision: Precision | str,
                            accumulate: Precision | str | None = None) -> float:
    """Relative forward-error bound for an ``n``-term dot product.

    With operands stored in ``precision`` and accumulation in
    ``accumulate`` (defaults to the same format), the computed dot
    product x·y satisfies ``|fl(x·y) - x·y| <= bound * |x|·|y|``.
    Tensor cores accumulate in a wider format, which is why the FP16
    and FP8 GEMM variants remain usable for long inner dimensions.
    """
    p_in = Precision.from_string(precision)
    p_acc = Precision.from_string(accumulate) if accumulate is not None else p_in
    u_in = unit_roundoff(p_in)
    u_acc = unit_roundoff(p_acc)
    if p_in.is_integer and p_acc.is_integer:
        return 0.0
    # one rounding per operand conversion + gamma_n for the accumulation
    return 2.0 * u_in + gamma(max(n, 1), u_acc) if u_acc > 0 else 2.0 * u_in


def matmul_error_bound(m: int, n: int, k: int, precision: Precision | str,
                       accumulate: Precision | str | None = None) -> float:
    """Normwise relative error bound for an ``m×k @ k×n`` product."""
    return dot_product_error_bound(k, precision, accumulate)


def cholesky_error_bound(n: int, precision: Precision | str) -> float:
    """Backward-error bound for a Cholesky factorization of order ``n``.

    ``A + dA = L @ L.T`` with ``||dA|| <= bound * ||A||`` (uniform
    precision).  For the tile-adaptive factorization the effective
    bound combines this with the per-tile storage perturbation computed
    by :func:`adaptive_perturbation_bound`.
    """
    u = unit_roundoff(precision)
    if u == 0.0:
        return 0.0
    return gamma(3 * max(n, 1) + 1, u)


def adaptive_perturbation_bound(tile_norms: np.ndarray,
                                tile_precisions: np.ndarray,
                                matrix_norm: float) -> float:
    """Relative perturbation induced by a per-tile precision mosaic.

    Parameters
    ----------
    tile_norms:
        Array of Frobenius norms of each tile.
    tile_precisions:
        Array (same shape) of :class:`Precision` members giving the
        storage format chosen for each tile.
    matrix_norm:
        Frobenius norm of the full matrix.

    Returns
    -------
    float
        Upper bound on ``||A_stored - A|| / ||A||`` — the quantity the
        adaptive rule keeps below the accuracy threshold ``eps``.
    """
    norms = np.asarray(tile_norms, dtype=np.float64).ravel()
    precisions = np.asarray(tile_precisions, dtype=object).ravel()
    if norms.shape != precisions.shape:
        raise ValueError("tile_norms and tile_precisions must have the same shape")
    if matrix_norm <= 0:
        return 0.0
    us = np.array([unit_roundoff(p) for p in precisions])
    # Frobenius norms of per-tile perturbations add in quadrature.
    perturbation = float(np.sqrt(np.sum((us * norms) ** 2)))
    return perturbation / float(matrix_norm)


def representable_relative_error(precision: Precision | str) -> float:
    """Worst-case relative error of representing a value in ``precision``.

    Equal to the unit roundoff for normalised values; used by tests and
    by the adaptive-precision heuristics.
    """
    return unit_roundoff(precision)


def min_precision_for_accuracy(eps: float,
                               candidates: tuple[Precision, ...] = (
                                   Precision.FP8_E4M3,
                                   Precision.FP16,
                                   Precision.FP32,
                                   Precision.FP64,
                               )) -> Precision:
    """Narrowest candidate precision whose unit roundoff is below ``eps``."""
    for p in sorted(candidates, key=lambda q: q.rank):
        if unit_roundoff(p) <= eps:
            return p
    return Precision.widest(*candidates)
