"""Bit-faithful FP8 quantization (E4M3 and E5M2).

NumPy has no 8-bit float dtype, so FP8 values are represented as
``float32`` arrays whose values lie exactly on the FP8 grid.  The
quantizer implements round-to-nearest-even on the target grid with
gradual underflow (subnormals) and saturation to the largest finite
value, matching the saturating behaviour of ``cublasLtMatmul`` with
``CUDA_R_8F_E4M3`` operands that the paper relies on.

The E4M3 format (1 sign, 4 exponent, 3 mantissa bits, bias 7) follows
the OCP FP8 specification: exponent field 0b1111 is *not* reserved for
infinities, so the maximum finite value is ``1.75 * 2**8 = 448``.
E5M2 (bias 15) mirrors IEEE binary16 semantics with a max finite of
``1.75 * 2**14 = 57344``.
"""

from __future__ import annotations

import numpy as np

from repro.precision.formats import Precision

# (mantissa_bits, exponent_bias, max_finite, min_normal_exponent)
_FP8_PARAMS = {
    Precision.FP8_E4M3: (3, 7, 448.0, -6),
    Precision.FP8_E5M2: (2, 15, 57344.0, -14),
}


def _round_to_grid(x: np.ndarray, mantissa_bits: int, min_normal_exp: int,
                   max_finite: float) -> np.ndarray:
    """Round ``x`` (float32/float64) to a low-precision binary grid.

    Uses scale-by-power-of-two plus ``np.rint`` which implements
    round-half-to-even, the rounding mode of tensor-core conversions.
    """
    x = np.asarray(x, dtype=np.float64)
    out = np.zeros_like(x)
    finite = np.isfinite(x)
    nonzero = finite & (x != 0.0)

    if np.any(nonzero):
        vals = x[nonzero]
        # exponent of each value: floor(log2(|v|))
        exp = np.floor(np.log2(np.abs(vals))).astype(np.int64)
        # clamp to the subnormal range: below min_normal_exp the grid
        # spacing stays 2**(min_normal_exp - mantissa_bits)
        exp = np.maximum(exp, min_normal_exp)
        scale = np.exp2(mantissa_bits - exp.astype(np.float64))
        rounded = np.rint(vals * scale) / scale
        # saturate to max finite (no infinities in E4M3)
        rounded = np.clip(rounded, -max_finite, max_finite)
        out[nonzero] = rounded

    # propagate NaN, saturate +-inf
    nan_mask = np.isnan(x)
    out[nan_mask] = np.nan
    posinf = np.isposinf(x)
    neginf = np.isneginf(x)
    out[posinf] = max_finite
    out[neginf] = -max_finite
    return out


def quantize_fp8(x: np.ndarray, variant: Precision = Precision.FP8_E4M3) -> np.ndarray:
    """Quantize an array to the FP8 value grid, returned as ``float32``.

    Parameters
    ----------
    x:
        Input array (any float dtype).
    variant:
        ``Precision.FP8_E4M3`` (default, the variant used by the paper's
        Cholesky tiles on GH200) or ``Precision.FP8_E5M2``.

    Returns
    -------
    numpy.ndarray
        ``float32`` array whose values all lie on the chosen FP8 grid.
        Values beyond the format's range saturate to ``±max_finite``;
        NaNs propagate.
    """
    if variant not in _FP8_PARAMS:
        raise ValueError(f"{variant} is not an FP8 format")
    mantissa_bits, _bias, max_finite, min_normal_exp = _FP8_PARAMS[variant]
    rounded = _round_to_grid(x, mantissa_bits, min_normal_exp, max_finite)
    return rounded.astype(np.float32)


def fp8_grid(variant: Precision = Precision.FP8_E4M3) -> np.ndarray:
    """Return all non-negative representable FP8 values, ascending.

    Useful for tests and for illustrating the format's dynamic range.
    """
    if variant not in _FP8_PARAMS:
        raise ValueError(f"{variant} is not an FP8 format")
    mantissa_bits, bias, max_finite, min_normal_exp = _FP8_PARAMS[variant]
    values = [0.0]
    # subnormals: fraction/2**m * 2**min_normal_exp
    for frac in range(1, 2 ** mantissa_bits):
        values.append(frac / (2 ** mantissa_bits) * 2.0 ** min_normal_exp)
    # normals
    max_exp = int(np.floor(np.log2(max_finite)))
    for e in range(min_normal_exp, max_exp + 1):
        for frac in range(2 ** mantissa_bits):
            v = (1.0 + frac / (2 ** mantissa_bits)) * 2.0 ** e
            if v <= max_finite:
                values.append(v)
    return np.array(sorted(set(values)), dtype=np.float64)


def is_representable_fp8(x: np.ndarray, variant: Precision = Precision.FP8_E4M3,
                         rtol: float = 0.0) -> np.ndarray:
    """Element-wise check that values already lie on the FP8 grid."""
    q = quantize_fp8(x, variant)
    x = np.asarray(x, dtype=np.float32)
    if rtol == 0.0:
        return q == x
    return np.abs(q - x) <= rtol * np.abs(x)
