"""Precision format descriptors.

Each format is described by the metadata needed both for numerical
emulation (mantissa/exponent widths, largest finite value, unit
roundoff) and for the performance model (bytes per element, the
tensor-core throughput class it maps to).

The formats follow the hardware the paper targets:

* ``FP64``, ``FP32`` — IEEE binary64/binary32.
* ``FP16`` — IEEE binary16 (native NumPy ``float16``).
* ``BF16`` — bfloat16, included for completeness of the adaptive rule.
* ``FP8_E4M3`` — the OCP/IEEE-style 8-bit float used by Hopper tensor
  cores (4 exponent bits, 3 mantissa bits, max finite 448).  This is
  the only FP8 formulation usable by ``cublasLtMatmul`` for both
  operands, as discussed in Sec. VI-B3 of the paper.
* ``FP8_E5M2`` — the wider-range/lower-precision FP8 variant.
* ``INT8`` / ``INT32`` — integer formats used for the SNP-matrix
  distance computations (inputs in INT8, accumulation in INT32).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

#: Largest finite value representable in FP8 E4M3 (S.1111.110 = 448).
FP8_E4M3_MAX = 448.0
#: Largest finite value representable in FP8 E5M2 (S.11110.11 = 57344).
FP8_E5M2_MAX = 57344.0


@dataclass(frozen=True)
class FormatSpec:
    """Numerical metadata for one storage/compute format.

    Attributes
    ----------
    name:
        Human-readable name (matches the :class:`Precision` member).
    bytes_per_element:
        Storage size, used by the memory-footprint and data-motion
        accounting.
    is_integer:
        True for INT8/INT32.
    mantissa_bits:
        Explicit mantissa (fraction) bits; ``None`` for integers.
    exponent_bits:
        Exponent field width; ``None`` for integers.
    max_finite:
        Largest finite representable magnitude.
    unit_roundoff:
        ``u = 2**-(mantissa_bits + 1)`` for floating point formats;
        for integer formats this is 0 (integer arithmetic is exact
        within range).
    numpy_dtype:
        The dtype values of this format are *stored* in.  Formats
        without native NumPy support (FP8, BF16) are stored in
        ``float32`` after quantization to the format's value grid.
    """

    name: str
    bytes_per_element: int
    is_integer: bool
    mantissa_bits: int | None
    exponent_bits: int | None
    max_finite: float
    unit_roundoff: float
    numpy_dtype: np.dtype

    @property
    def is_float(self) -> bool:
        return not self.is_integer


class Precision(enum.Enum):
    """Enumeration of supported precisions, ordered from widest to narrowest."""

    FP64 = "fp64"
    FP32 = "fp32"
    FP16 = "fp16"
    BF16 = "bf16"
    FP8_E4M3 = "fp8_e4m3"
    FP8_E5M2 = "fp8_e5m2"
    INT8 = "int8"
    INT32 = "int32"

    # ------------------------------------------------------------------
    # metadata access
    # ------------------------------------------------------------------
    @property
    def spec(self) -> FormatSpec:
        return _SPECS[self]

    @property
    def bytes_per_element(self) -> int:
        return self.spec.bytes_per_element

    @property
    def is_integer(self) -> bool:
        return self.spec.is_integer

    @property
    def is_float(self) -> bool:
        return self.spec.is_float

    @property
    def max_finite(self) -> float:
        return self.spec.max_finite

    @property
    def numpy_dtype(self) -> np.dtype:
        return self.spec.numpy_dtype

    # ------------------------------------------------------------------
    # ordering helpers
    # ------------------------------------------------------------------
    @property
    def rank(self) -> int:
        """Width rank: larger means numerically wider (more accurate)."""
        return _RANK[self]

    def wider_than(self, other: "Precision") -> bool:
        return self.rank > other.rank

    def narrower_than(self, other: "Precision") -> bool:
        return self.rank < other.rank

    @staticmethod
    def widest(*precisions: "Precision") -> "Precision":
        """Return the widest of the given precisions."""
        if not precisions:
            raise ValueError("widest() requires at least one precision")
        return max(precisions, key=lambda p: p.rank)

    @staticmethod
    def narrowest(*precisions: "Precision") -> "Precision":
        """Return the narrowest of the given precisions."""
        if not precisions:
            raise ValueError("narrowest() requires at least one precision")
        return min(precisions, key=lambda p: p.rank)

    @classmethod
    def from_string(cls, value: "str | Precision") -> "Precision":
        """Parse a precision from common aliases (``"fp16"``, ``"half"``, ...)."""
        if isinstance(value, cls):
            return value
        key = str(value).strip().lower()
        aliases = {
            "double": cls.FP64,
            "float64": cls.FP64,
            "fp64": cls.FP64,
            "single": cls.FP32,
            "float32": cls.FP32,
            "fp32": cls.FP32,
            "half": cls.FP16,
            "float16": cls.FP16,
            "fp16": cls.FP16,
            "bfloat16": cls.BF16,
            "bf16": cls.BF16,
            "fp8": cls.FP8_E4M3,
            "fp8_e4m3": cls.FP8_E4M3,
            "e4m3": cls.FP8_E4M3,
            "fp8_e5m2": cls.FP8_E5M2,
            "e5m2": cls.FP8_E5M2,
            "int8": cls.INT8,
            "int32": cls.INT32,
        }
        if key not in aliases:
            raise ValueError(f"unknown precision {value!r}")
        return aliases[key]

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


_SPECS: dict[Precision, FormatSpec] = {
    Precision.FP64: FormatSpec(
        name="fp64",
        bytes_per_element=8,
        is_integer=False,
        mantissa_bits=52,
        exponent_bits=11,
        max_finite=float(np.finfo(np.float64).max),
        unit_roundoff=2.0 ** -53,
        numpy_dtype=np.dtype(np.float64),
    ),
    Precision.FP32: FormatSpec(
        name="fp32",
        bytes_per_element=4,
        is_integer=False,
        mantissa_bits=23,
        exponent_bits=8,
        max_finite=float(np.finfo(np.float32).max),
        unit_roundoff=2.0 ** -24,
        numpy_dtype=np.dtype(np.float32),
    ),
    Precision.FP16: FormatSpec(
        name="fp16",
        bytes_per_element=2,
        is_integer=False,
        mantissa_bits=10,
        exponent_bits=5,
        max_finite=float(np.finfo(np.float16).max),
        unit_roundoff=2.0 ** -11,
        numpy_dtype=np.dtype(np.float16),
    ),
    Precision.BF16: FormatSpec(
        name="bf16",
        bytes_per_element=2,
        is_integer=False,
        mantissa_bits=7,
        exponent_bits=8,
        max_finite=3.3895313892515355e38,
        unit_roundoff=2.0 ** -8,
        # bfloat16 has no native NumPy dtype: values are stored in
        # float32 after rounding to the bf16 grid.
        numpy_dtype=np.dtype(np.float32),
    ),
    Precision.FP8_E4M3: FormatSpec(
        name="fp8_e4m3",
        bytes_per_element=1,
        is_integer=False,
        mantissa_bits=3,
        exponent_bits=4,
        max_finite=FP8_E4M3_MAX,
        unit_roundoff=2.0 ** -4,
        numpy_dtype=np.dtype(np.float32),
    ),
    Precision.FP8_E5M2: FormatSpec(
        name="fp8_e5m2",
        bytes_per_element=1,
        is_integer=False,
        mantissa_bits=2,
        exponent_bits=5,
        max_finite=FP8_E5M2_MAX,
        unit_roundoff=2.0 ** -3,
        numpy_dtype=np.dtype(np.float32),
    ),
    Precision.INT8: FormatSpec(
        name="int8",
        bytes_per_element=1,
        is_integer=True,
        mantissa_bits=None,
        exponent_bits=None,
        max_finite=127.0,
        unit_roundoff=0.0,
        numpy_dtype=np.dtype(np.int8),
    ),
    Precision.INT32: FormatSpec(
        name="int32",
        bytes_per_element=4,
        is_integer=True,
        mantissa_bits=None,
        exponent_bits=None,
        max_finite=float(np.iinfo(np.int32).max),
        unit_roundoff=0.0,
        numpy_dtype=np.dtype(np.int32),
    ),
}

# Width ranking used by the adaptive precision logic.  Integers rank at
# the bottom: they are never chosen as a floating tile storage format.
_RANK: dict[Precision, int] = {
    Precision.FP64: 70,
    Precision.FP32: 60,
    Precision.BF16: 45,
    Precision.FP16: 40,
    Precision.FP8_E5M2: 25,
    Precision.FP8_E4M3: 20,
    Precision.INT32: 10,
    Precision.INT8: 0,
}


def unit_roundoff(precision: "Precision | str") -> float:
    """Return the unit roundoff ``u`` of a floating-point format.

    The unit roundoff drives the Higham–Mary adaptive precision rule
    (see :mod:`repro.tiles.adaptive`): a tile may be stored in a format
    with unit roundoff ``u_k`` when ``u_k * ||A_tile|| <= eps * ||A||``.
    Integer formats return 0.
    """
    return Precision.from_string(precision).spec.unit_roundoff


#: Floating-point formats usable as tile storage, widest first.
FLOAT_STORAGE_FORMATS: tuple[Precision, ...] = (
    Precision.FP64,
    Precision.FP32,
    Precision.BF16,
    Precision.FP16,
    Precision.FP8_E5M2,
    Precision.FP8_E4M3,
)
