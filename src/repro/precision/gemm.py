"""Emulated tensor-core GEMM / SYRK variants.

The paper's Build and Associate phases call cuBLAS with precision
combinations chosen per tile:

* ``AB8I_C32I_OP32I`` — operands A/B in INT8, C and the accumulator in
  INT32 (used for the SNP part of the distance SYRK, Sec. V-A/V-B1).
* ``cublasSgemm`` — plain FP32 GEMM (confounder tiles).
* FP16 and FP8 (``CUDA_R_8F_E4M3``) tensor-core GEMMs with FP32
  accumulation (off-diagonal Cholesky update tiles).

Each variant is emulated by (1) quantizing the operands onto the input
format's value grid, (2) performing the product in the accumulation
format, (3) rounding the result to the output format.  Integer variants
are exact as long as the INT32 accumulator does not overflow, exactly
like the hardware.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.precision.formats import Precision
from repro.precision.quantize import quantize


@dataclass(frozen=True)
class GemmVariant:
    """A named (input, accumulate, output) precision combination.

    Attributes
    ----------
    name:
        cuBLAS-style identifier, e.g. ``"AB8I_C32I_OP32I"``.
    input_precision:
        Format the A/B operands are quantized to before multiplying.
    accumulate_precision:
        Format of the accumulator (INT32 for integer variants, FP32
        for tensor-core float variants, FP64 for the reference path).
    output_precision:
        Format the result is rounded to on store.
    """

    name: str
    input_precision: Precision
    accumulate_precision: Precision
    output_precision: Precision

    @property
    def flops_precision(self) -> Precision:
        """Precision class used by the performance model for this variant."""
        return self.input_precision


#: Registry of the GEMM variants referenced in the paper.
_VARIANTS: dict[str, GemmVariant] = {
    "AB8I_C32I_OP32I": GemmVariant(
        "AB8I_C32I_OP32I", Precision.INT8, Precision.INT32, Precision.INT32
    ),
    "FP64": GemmVariant("FP64", Precision.FP64, Precision.FP64, Precision.FP64),
    "FP32": GemmVariant("FP32", Precision.FP32, Precision.FP32, Precision.FP32),
    "FP16_FP32ACC": GemmVariant(
        "FP16_FP32ACC", Precision.FP16, Precision.FP32, Precision.FP32
    ),
    "BF16_FP32ACC": GemmVariant(
        "BF16_FP32ACC", Precision.BF16, Precision.FP32, Precision.FP32
    ),
    "FP8_E4M3_FP32ACC": GemmVariant(
        "FP8_E4M3_FP32ACC", Precision.FP8_E4M3, Precision.FP32, Precision.FP32
    ),
    "FP8_E5M2_FP32ACC": GemmVariant(
        "FP8_E5M2_FP32ACC", Precision.FP8_E5M2, Precision.FP32, Precision.FP32
    ),
}


def gemm_variant(name: str) -> GemmVariant:
    """Look up a GEMM variant by its cuBLAS-style name."""
    try:
        return _VARIANTS[name.upper()]
    except KeyError as exc:
        raise ValueError(
            f"unknown GEMM variant {name!r}; available: {sorted(_VARIANTS)}"
        ) from exc


def variant_for_input(precision: Precision | str) -> GemmVariant:
    """Choose the natural GEMM variant given the input tile precision.

    Mirrors the fine-grained dispatch in Fig. 2 of the paper: integer
    tiles go through the INT8/INT32 path, FP32 tiles through SGEMM, and
    lower float precisions through a tensor-core variant with FP32
    accumulation.
    """
    precision = Precision.from_string(precision)
    mapping = {
        Precision.INT8: "AB8I_C32I_OP32I",
        Precision.INT32: "AB8I_C32I_OP32I",
        Precision.FP64: "FP64",
        Precision.FP32: "FP32",
        Precision.FP16: "FP16_FP32ACC",
        Precision.BF16: "BF16_FP32ACC",
        Precision.FP8_E4M3: "FP8_E4M3_FP32ACC",
        Precision.FP8_E5M2: "FP8_E5M2_FP32ACC",
    }
    return gemm_variant(mapping[precision])


def _to_accumulator(x: np.ndarray, acc: Precision) -> np.ndarray:
    if acc.is_integer:
        return np.asarray(x, dtype=np.int64)  # wide host accumulator; overflow checked below
    return np.asarray(x, dtype=np.float64 if acc is Precision.FP64 else np.float32)


def gemm_mixed(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | None = None,
    *,
    variant: GemmVariant | str = "FP32",
    alpha: float = 1.0,
    beta: float = 0.0,
    transa: bool = False,
    transb: bool = False,
) -> np.ndarray:
    """Mixed-precision ``C = alpha * op(A) @ op(B) + beta * C``.

    Operands are quantized to the variant's input precision, the
    product is accumulated in the variant's accumulation precision, and
    the result is rounded to the output precision.

    For the integer variant the computation is exact provided the INT32
    accumulator does not overflow; an overflow raises ``OverflowError``
    (hardware would silently wrap, which is never acceptable for the
    distance computation the paper performs).
    """
    if isinstance(variant, str):
        variant = gemm_variant(variant)

    op_a = np.asarray(a).T if transa else np.asarray(a)
    op_b = np.asarray(b).T if transb else np.asarray(b)
    if op_a.shape[-1] != op_b.shape[0]:
        raise ValueError(
            f"inner dimensions do not match: {op_a.shape} @ {op_b.shape}"
        )

    qa = quantize(op_a, variant.input_precision)
    qb = quantize(op_b, variant.input_precision)

    acc = variant.accumulate_precision
    prod = _to_accumulator(qa, acc) @ _to_accumulator(qb, acc)

    if acc.is_integer:
        info = np.iinfo(np.int32)
        if prod.size and (prod.max() > info.max or prod.min() < info.min):
            raise OverflowError(
                "INT32 accumulator overflow in integer GEMM; "
                "reduce the inner dimension per tile (the paper tiles the "
                "SNP dimension so partial sums stay in range)"
            )
        result = alpha * prod.astype(np.float64)
    else:
        # round the accumulated product once, as the hardware does on store
        result = alpha * prod.astype(np.float64)

    if beta != 0.0:
        if c is None:
            raise ValueError("beta != 0 requires C")
        result = result + beta * np.asarray(c, dtype=np.float64)

    return quantize(result, variant.output_precision)


def syrk_mixed(
    a: np.ndarray,
    c: np.ndarray | None = None,
    *,
    variant: GemmVariant | str = "FP32",
    alpha: float = 1.0,
    beta: float = 0.0,
    trans: bool = False,
    lower: bool = True,
) -> np.ndarray:
    """Mixed-precision symmetric rank-k update.

    ``C = alpha * A @ A.T + beta * C`` (``trans=False``) or
    ``C = alpha * A.T @ A + beta * C`` (``trans=True``), with the same
    quantize/accumulate/round pipeline as :func:`gemm_mixed`.  Only the
    requested triangle is guaranteed meaningful, but for convenience the
    full symmetric matrix is returned (both triangles are filled).
    """
    if isinstance(variant, str):
        variant = gemm_variant(variant)
    a_arr = np.asarray(a)
    op = a_arr.T if trans else a_arr
    full = gemm_mixed(
        op, op, c=None, variant=variant, alpha=alpha, beta=0.0, transb=True
    )
    full64 = np.asarray(full, dtype=np.float64)
    # symmetrize exactly (the emulated product may carry tiny rounding
    # asymmetry from the per-element store rounding order)
    full64 = np.tril(full64) + np.tril(full64, -1).T if lower else (
        np.triu(full64) + np.triu(full64, 1).T
    )
    if beta != 0.0:
        if c is None:
            raise ValueError("beta != 0 requires C")
        full64 = full64 + beta * np.asarray(c, dtype=np.float64)
    return quantize(full64, variant.output_precision)


def gemm_flop_count(m: int, n: int, k: int) -> int:
    """Number of floating (or integer) operations of an ``m×k @ k×n`` GEMM."""
    return 2 * m * n * k


def syrk_flop_count(n: int, k: int) -> int:
    """Operation count of a rank-k update producing an ``n×n`` symmetric matrix."""
    return n * (n + 1) * k
