"""Emulated tensor-core GEMM / SYRK variants, BLAS-backed.

The paper's Build and Associate phases call cuBLAS with precision
combinations chosen per tile:

* ``AB8I_C32I_OP32I`` — operands A/B in INT8, C and the accumulator in
  INT32 (used for the SNP part of the distance SYRK, Sec. V-A/V-B1).
* ``cublasSgemm`` — plain FP32 GEMM (confounder tiles).
* FP16 and FP8 (``CUDA_R_8F_E4M3``) tensor-core GEMMs with FP32
  accumulation (off-diagonal Cholesky update tiles).

Each variant is emulated by (1) quantizing the operands onto the input
format's value grid, (2) performing the product in the accumulation
format, (3) rounding the result to the output format.  Integer variants
are exact as long as the INT32 accumulator does not overflow, exactly
like the hardware.

Backend
-------
The integer variants dispatch the actual multiplication through float64
dgemm (``"blas"`` backend, the default): a float64 product of
integer-valued operands is bit-exact as long as every partial sum stays
below ``2**53`` (:data:`EXACT_DGEMM_BOUND`), which the analytic bound
``max|a| * max|b| * k`` proves for any realistic SNP blocking.  NumPy
executes integer matmul with scalar loops (no BLAS), so this dispatch
is what makes the "fast" INT8 path actually fast on the host.  The
historical int64 matmul is kept behind the ``"int64"`` backend for
cross-checking; :func:`integer_backend` switches it temporarily.

Operands that are reused across many tiles (the genotype matrix in the
Build phase, the panel tiles in the Cholesky trailing update) can be
wrapped in a :class:`QuantizedOperand` so quantization, the float64
cast for BLAS, and the ``max|.|`` bound are computed once per matrix
instead of once per (tile x SNP-block) GEMM call.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass

import numpy as np
from scipy.linalg import blas as _scipy_blas

from repro.precision.formats import Precision
from repro.precision.quantize import quantize

#: Largest magnitude below which every float64 partial sum of an
#: integer-valued product is exactly representable (2**53).
EXACT_DGEMM_BOUND = float(2 ** 53)

#: Same bound for float32 accumulation (2**24): when the analytic
#: partial-sum bound stays below it, the integer product can dispatch to
#: sgemm — twice the flop rate and half the operand-cache footprint.
EXACT_SGEMM_BOUND = float(2 ** 24)


def integer_gemm_dtype(max_a: float, max_b: float, k: int) -> type | None:
    """Narrowest float dtype that multiplies these integers exactly.

    Returns ``numpy.float32``/``numpy.float64`` when the analytic
    partial-sum bound ``max|a| * max|b| * k`` proves every intermediate
    exactly representable, or ``None`` when not even float64 is safe
    (the caller must fall back to the int64 reference path).
    """
    bound = max_a * max_b * max(k, 1)
    if bound < EXACT_SGEMM_BOUND:
        return np.float32
    if bound < EXACT_DGEMM_BOUND:
        return np.float64
    return None

_INT32_MAX = float(np.iinfo(np.int32).max)
_INT32_MIN = float(np.iinfo(np.int32).min)

#: Module-level integer-GEMM backend: "blas" (float64 dgemm, exact under
#: :data:`EXACT_DGEMM_BOUND`) or "int64" (the historical reference path).
_INTEGER_BACKEND = "blas"


def set_integer_backend(backend: str) -> str:
    """Select the integer-GEMM backend; returns the previous setting."""
    global _INTEGER_BACKEND
    if backend not in ("blas", "int64"):
        raise ValueError("integer backend must be 'blas' or 'int64'")
    previous = _INTEGER_BACKEND
    _INTEGER_BACKEND = backend
    return previous


@contextlib.contextmanager
def integer_backend(backend: str):
    """Context manager pinning the integer-GEMM backend (tests/benchmarks)."""
    previous = set_integer_backend(backend)
    try:
        yield
    finally:
        set_integer_backend(previous)


@dataclass(frozen=True)
class GemmVariant:
    """A named (input, accumulate, output) precision combination.

    Attributes
    ----------
    name:
        cuBLAS-style identifier, e.g. ``"AB8I_C32I_OP32I"``.
    input_precision:
        Format the A/B operands are quantized to before multiplying.
    accumulate_precision:
        Format of the accumulator (INT32 for integer variants, FP32
        for tensor-core float variants, FP64 for the reference path).
    output_precision:
        Format the result is rounded to on store.
    """

    name: str
    input_precision: Precision
    accumulate_precision: Precision
    output_precision: Precision

    @property
    def flops_precision(self) -> Precision:
        """Precision class used by the performance model for this variant."""
        return self.input_precision


#: Registry of the GEMM variants referenced in the paper.
_VARIANTS: dict[str, GemmVariant] = {
    "AB8I_C32I_OP32I": GemmVariant(
        "AB8I_C32I_OP32I", Precision.INT8, Precision.INT32, Precision.INT32
    ),
    "FP64": GemmVariant("FP64", Precision.FP64, Precision.FP64, Precision.FP64),
    "FP32": GemmVariant("FP32", Precision.FP32, Precision.FP32, Precision.FP32),
    "FP16_FP32ACC": GemmVariant(
        "FP16_FP32ACC", Precision.FP16, Precision.FP32, Precision.FP32
    ),
    "BF16_FP32ACC": GemmVariant(
        "BF16_FP32ACC", Precision.BF16, Precision.FP32, Precision.FP32
    ),
    "FP8_E4M3_FP32ACC": GemmVariant(
        "FP8_E4M3_FP32ACC", Precision.FP8_E4M3, Precision.FP32, Precision.FP32
    ),
    "FP8_E5M2_FP32ACC": GemmVariant(
        "FP8_E5M2_FP32ACC", Precision.FP8_E5M2, Precision.FP32, Precision.FP32
    ),
}


def gemm_variant(name: str) -> GemmVariant:
    """Look up a GEMM variant by its cuBLAS-style name."""
    try:
        return _VARIANTS[name.upper()]
    except KeyError as exc:
        raise ValueError(
            f"unknown GEMM variant {name!r}; available: {sorted(_VARIANTS)}"
        ) from exc


def variant_for_input(precision: Precision | str) -> GemmVariant:
    """Choose the natural GEMM variant given the input tile precision.

    Mirrors the fine-grained dispatch in Fig. 2 of the paper: integer
    tiles go through the INT8/INT32 path, FP32 tiles through SGEMM, and
    lower float precisions through a tensor-core variant with FP32
    accumulation.
    """
    precision = Precision.from_string(precision)
    mapping = {
        Precision.INT8: "AB8I_C32I_OP32I",
        Precision.INT32: "AB8I_C32I_OP32I",
        Precision.FP64: "FP64",
        Precision.FP32: "FP32",
        Precision.FP16: "FP16_FP32ACC",
        Precision.BF16: "BF16_FP32ACC",
        Precision.FP8_E4M3: "FP8_E4M3_FP32ACC",
        Precision.FP8_E5M2: "FP8_E5M2_FP32ACC",
    }
    return gemm_variant(mapping[precision])


class QuantizedOperand:
    """A matrix quantized once to a GEMM input precision.

    Wrapping an operand amortizes three per-call costs of
    :func:`gemm_mixed` across every tile GEMM that reads the matrix:

    * quantization onto the input format's value grid,
    * the float64 cast the BLAS backend multiplies with, and
    * the ``max|.|`` scan backing the analytic overflow/exactness bounds.

    Slicing (``q[rows, cols]``) returns a view-backed operand sharing
    the parent's caches, so the Build phase quantizes the genotype
    matrix exactly once no matter how many (tile x SNP-block) products
    are taken from it.
    """

    __slots__ = ("array", "precision", "_floats", "_max_abs")

    def __init__(self, data: np.ndarray, precision: Precision | str) -> None:
        self.precision = Precision.from_string(precision)
        self.array = quantize(np.asarray(data), self.precision)
        self._floats: dict[type, np.ndarray] = {}
        self._max_abs: float | None = None

    # ------------------------------------------------------------------
    @classmethod
    def wrap(cls, x: "np.ndarray | QuantizedOperand",
             precision: Precision | str) -> "QuantizedOperand":
        """Wrap ``x``, reusing it when already quantized to ``precision``."""
        precision = Precision.from_string(precision)
        if isinstance(x, QuantizedOperand):
            if x.precision is precision:
                return x
            return cls(np.asarray(x.array), precision)
        return cls(x, precision)

    @property
    def shape(self) -> tuple[int, ...]:
        return self.array.shape

    def as_float(self, dtype: type = np.float64) -> np.ndarray:
        """The quantized values in a float dtype (cached; fed to BLAS)."""
        cached = self._floats.get(dtype)
        if cached is None:
            if self.array.dtype == dtype:
                cached = self.array
            else:
                cached = np.asarray(self.array, dtype=dtype)
            self._floats[dtype] = cached
        return cached

    def as_float64(self) -> np.ndarray:
        """The quantized values as float64 (cached)."""
        return self.as_float(np.float64)

    def max_abs(self) -> float:
        """Cached ``max|.|`` of the quantized values (overflow bounds)."""
        if self._max_abs is None:
            if not self.array.size:
                self._max_abs = 0.0
            elif np.issubdtype(self.array.dtype, np.integer):
                # scan the narrow integer storage; abs() on int8 would
                # overflow at -128, so take |min|/|max| in python floats
                self._max_abs = max(abs(float(self.array.min())),
                                    abs(float(self.array.max())))
            else:
                f = self.as_float64()
                self._max_abs = float(np.max(np.abs(f)))
        return self._max_abs

    def __getitem__(self, idx) -> "QuantizedOperand":
        """View-backed slice sharing the parent's caches.

        The parent's ``max|.|`` is kept as a (conservative) bound for
        the slice — it only ever over-estimates, which is safe for both
        the overflow and the exactness checks.
        """
        view = QuantizedOperand.__new__(QuantizedOperand)
        view.precision = self.precision
        view.array = self.array[idx]
        view._floats = {dt: f[idx] for dt, f in self._floats.items()}
        view._max_abs = self._max_abs
        return view

    @property
    def T(self) -> "QuantizedOperand":
        """Transposed view sharing the parent's caches."""
        view = QuantizedOperand.__new__(QuantizedOperand)
        view.precision = self.precision
        view.array = self.array.T
        view._floats = {dt: f.T for dt, f in self._floats.items()}
        view._max_abs = self._max_abs
        return view

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"QuantizedOperand({self.shape}, {self.precision})"


def _check_int32_overflow(prod: np.ndarray, max_a: float, max_b: float,
                          k: int) -> None:
    """Raise if the emulated INT32 accumulator would have overflowed.

    The analytic bound ``max|a| * max|b| * k`` proves safety without
    touching the product: genotypes in {0, 1, 2} with the default
    ``snp_block=4096`` give ``2*2*4096 = 16384``, nowhere near ``2**31``,
    so the hot path never pays the full ``O(m*n)`` min/max scan the
    historical implementation performed on every tile.
    """
    if max_a * max_b * k <= _INT32_MAX:
        return
    if prod.size and (prod.max() > _INT32_MAX or prod.min() < _INT32_MIN):
        raise OverflowError(
            "INT32 accumulator overflow in integer GEMM; "
            "reduce the inner dimension per tile (the paper tiles the "
            "SNP dimension so partial sums stay in range)"
        )


def _integer_product(qa: QuantizedOperand, qb: QuantizedOperand,
                     transa: bool, transb: bool) -> np.ndarray:
    """Exact integer product ``op(A) @ op(B)`` in a float container.

    Dispatches to sgemm/dgemm at the narrowest float dtype whose
    partial-sum bound proves exactness (sgemm for genotype-scale data);
    falls back to the int64 reference path otherwise or when pinned via
    :func:`integer_backend`.  The returned values are exact integers
    whatever the container dtype.
    """
    k = (qa.shape[0] if transa else qa.shape[-1])
    blas_dtype = integer_gemm_dtype(qa.max_abs(), qb.max_abs(), k)
    if _INTEGER_BACKEND == "blas" and blas_dtype is not None:
        fa = qa.as_float(blas_dtype)
        fb = qb.as_float(blas_dtype)
        if transa:
            fa = fa.T
        if transb:
            fb = fb.T
        prod = fa @ fb  # sgemm/dgemm; exact under the analytic bound
    else:
        ia = np.asarray(qa.array, dtype=np.int64)
        ib = np.asarray(qb.array, dtype=np.int64)
        if transa:
            ia = ia.T
        if transb:
            ib = ib.T
        prod = (ia @ ib).astype(np.float64)
    _check_int32_overflow(prod, qa.max_abs(), qb.max_abs(), k)
    return prod


def _float_accumulator_dtype(acc: Precision) -> type:
    return np.float64 if acc is Precision.FP64 else np.float32


def gemm_mixed(
    a: np.ndarray | QuantizedOperand,
    b: np.ndarray | QuantizedOperand,
    c: np.ndarray | None = None,
    *,
    variant: GemmVariant | str = "FP32",
    alpha: float = 1.0,
    beta: float = 0.0,
    transa: bool = False,
    transb: bool = False,
) -> np.ndarray:
    """Mixed-precision ``C = alpha * op(A) @ op(B) + beta * C``.

    Operands are quantized to the variant's input precision (skipped
    when a matching :class:`QuantizedOperand` is passed), the product is
    accumulated in the variant's accumulation precision, and the result
    is rounded to the output precision.

    For the integer variant the computation is exact provided the INT32
    accumulator does not overflow; an overflow raises ``OverflowError``
    (hardware would silently wrap, which is never acceptable for the
    distance computation the paper performs).
    """
    if isinstance(variant, str):
        variant = gemm_variant(variant)

    qa = QuantizedOperand.wrap(a, variant.input_precision)
    qb = QuantizedOperand.wrap(b, variant.input_precision)
    inner_a = qa.shape[0] if transa else qa.shape[-1]
    inner_b = qb.shape[-1] if transb else qb.shape[0]
    if inner_a != inner_b:
        op_shape_a = qa.shape[::-1] if transa else qa.shape
        op_shape_b = qb.shape[::-1] if transb else qb.shape
        raise ValueError(
            f"inner dimensions do not match: {op_shape_a} @ {op_shape_b}"
        )

    acc = variant.accumulate_precision
    if acc.is_integer:
        prod = _integer_product(qa, qb, transa, transb)
        if (alpha == 1.0 and beta == 0.0
                and variant.output_precision is Precision.INT32):
            # overflow was checked above and the values are integral, so
            # the INT32 store rounding is a plain cast — skip the
            # rint/clip float roundtrip of the generic quantizer
            return prod.astype(np.int32)
        result = alpha * np.asarray(prod, dtype=np.float64)
    else:
        dtype = _float_accumulator_dtype(acc)
        fa = np.asarray(qa.array, dtype=dtype)
        fb = np.asarray(qb.array, dtype=dtype)
        if transa:
            fa = fa.T
        if transb:
            fb = fb.T
        prod = fa @ fb  # sgemm/dgemm at the accumulation precision
        # round the accumulated product once, as the hardware does on store
        result = alpha * prod.astype(np.float64)

    if beta != 0.0:
        if c is None:
            raise ValueError("beta != 0 requires C")
        result = result + beta * np.asarray(c, dtype=np.float64)

    return quantize(result, variant.output_precision)


def _mirror_triangle(tri: np.ndarray) -> np.ndarray:
    """Fill the full symmetric matrix from one computed triangle.

    ``tri`` must have its unreferenced triangle zeroed — true both for
    freshly allocated ``?syrk`` output and for ``tril``/``triu`` —
    which is what makes ``tri + tri.T`` the exact mirror.
    """
    diagonal = np.diagonal(tri).copy()
    full = tri + tri.T
    np.fill_diagonal(full, diagonal)
    return full


def syrk_mixed(
    a: np.ndarray | QuantizedOperand,
    c: np.ndarray | None = None,
    *,
    variant: GemmVariant | str = "FP32",
    alpha: float = 1.0,
    beta: float = 0.0,
    trans: bool = False,
    lower: bool = True,
) -> np.ndarray:
    """Mixed-precision symmetric rank-k update.

    ``C = alpha * A @ A.T + beta * C`` (``trans=False``) or
    ``C = alpha * A.T @ A + beta * C`` (``trans=True``), with the same
    quantize/accumulate/round pipeline as :func:`gemm_mixed`.  Only the
    requested triangle is *computed* — the update runs through the BLAS
    ``?syrk`` routine at half the flops of a full GEMM — and the result
    is mirrored exactly into the other triangle on return, so the full
    symmetric matrix is available for convenience.
    """
    if isinstance(variant, str):
        variant = gemm_variant(variant)
    q = QuantizedOperand.wrap(a, variant.input_precision)
    acc = variant.accumulate_precision

    if acc.is_integer:
        k = q.shape[0] if trans else q.shape[-1]
        blas_dtype = integer_gemm_dtype(q.max_abs(), q.max_abs(), k)
        if _INTEGER_BACKEND == "blas" and blas_dtype is not None and (
                q.array.size):
            op = q.as_float(blas_dtype)
            if trans:
                op = op.T
            syrk_fn = (_scipy_blas.dsyrk if blas_dtype is np.float64
                       else _scipy_blas.ssyrk)
            tri = np.asarray(syrk_fn(1.0, op, lower=lower), dtype=np.float64)
        else:
            iop = np.asarray(q.array, dtype=np.int64)
            if trans:
                iop = iop.T
            prod = (iop @ iop.T).astype(np.float64)
            tri = np.tril(prod) if lower else np.triu(prod)
        _check_int32_overflow(tri, q.max_abs(), q.max_abs(), k)
        full = _mirror_triangle(tri)
    else:
        dtype = _float_accumulator_dtype(acc)
        op = np.asarray(q.array, dtype=dtype)
        if trans:
            op = op.T
        if op.size:
            syrk_fn = _scipy_blas.dsyrk if dtype is np.float64 else _scipy_blas.ssyrk
            tri = np.asarray(syrk_fn(1.0, op, lower=lower), dtype=np.float64)
        else:
            tri = np.zeros((op.shape[0], op.shape[0]), dtype=np.float64)
        full = _mirror_triangle(tri)

    result = alpha * full
    if beta != 0.0:
        if c is None:
            raise ValueError("beta != 0 requires C")
        result = result + beta * np.asarray(c, dtype=np.float64)
    return quantize(result, variant.output_precision)


def gemm_flop_count(m: int, n: int, k: int) -> int:
    """Number of floating (or integer) operations of an ``m×k @ k×n`` GEMM."""
    return 2 * m * n * k


def syrk_flop_count(n: int, k: int) -> int:
    """Operation count of a rank-k update producing an ``n×n`` symmetric matrix."""
    return n * (n + 1) * k
