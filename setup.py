"""Setuptools shim.

Kept alongside ``pyproject.toml`` so that editable installs work on
minimal/offline environments where the ``wheel`` package (required by
PEP 660 editable builds with older setuptools) is unavailable:

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
