#!/usr/bin/env python
"""Project the GWAS workload onto the paper's supercomputers.

Uses the calibrated machine model (``repro.perfmodel``) to answer the
questions behind Figs. 7–14: how fast does the Build / Associate /
full-KRR pipeline run on Summit, Leonardo, Frontier and Alps, how do
the FP16 and FP8 floors compare, and how does the mixed-precision KRR
solver compare against the CPU-only REGENIE baseline.

Usage::

    python examples/scaling_projection.py [--system Alps] [--gpus 4096]
"""

from __future__ import annotations

import argparse

from repro.experiments.report import format_table
from repro.perfmodel import (
    MachineModel,
    regenie_comparison,
    system_comparison,
    weak_scaling_series,
)
from repro.precision import Precision


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--system", default="Alps",
                        choices=["Summit", "Leonardo", "Frontier", "Alps"])
    parser.add_argument("--gpus", type=int, default=4096)
    args = parser.parse_args()

    model = MachineModel(system=args.system)
    n = model.matrix_size_for_memory(args.gpus)
    print(f"=== {args.system}, {args.gpus} GPUs, kernel matrix order "
          f"{n / 1e6:.2f}M (memory-limited) ===\n")

    rows = []
    for low in (Precision.FP32, Precision.FP16, Precision.FP8_E4M3):
        estimates = model.krr_estimate(n, n, args.gpus, low_precision=low)
        rows.append({
            "precision mix": f"FP32/{low.value.upper()}",
            "Build PFlop/s": estimates["build"].throughput / 1e15,
            "Associate PFlop/s": estimates["associate"].throughput / 1e15,
            "KRR PFlop/s": estimates["krr"].throughput / 1e15,
            "time (s)": estimates["krr"].time,
        })
    print(format_table(rows, precision=4))

    print("\nWeak scaling of the Associate phase (FP8 floor):")
    series = weak_scaling_series(model, [256, 512, 1024, 2048, 4096],
                                 phase="associate",
                                 low_precision=Precision.FP8_E4M3)
    print(format_table([{
        "GPUs": p.n_gpus, "matrix size": p.matrix_size,
        "PFlop/s": p.throughput / 1e15, "efficiency": p.efficiency,
    } for p in series], precision=3))

    print("\nCross-system comparison at the paper's scales (Fig. 14e):")
    print(format_table([r.as_dict() for r in system_comparison()], precision=4))

    comparison = regenie_comparison()
    print(f"\nHeadroom over CPU-only REGENIE (credited with a full dual-socket "
          f"Genoa node): {comparison.speedup:.2e}x "
          f"(~{comparison.orders_of_magnitude:.1f} orders of magnitude)")


if __name__ == "__main__":
    main()
