#!/usr/bin/env python
"""Out-of-core KRR: fit under a residency budget a quarter of the mosaic.

The paper fits 305k-patient cohorts only because the kernel matrix is a
precision-adapted tile mosaic — and past a point the mosaic itself no
longer fits one node.  This example runs the full Build → Factor →
Solve → Predict pipeline with the session's tile store capped at ~25%
of the mosaic footprint: least-recently-used tiles spill to disk in
their native storage precision, the scheduler pins each task's working
set, and the background reader prefetches upcoming tiles.

The contract being demonstrated (and asserted): the budgeted run's
predictions are **bitwise identical** to the fully-resident run, and
the tracked peak resident tile bytes stay under the budget.

Usage::

    python examples/out_of_core.py [--individuals 4096] [--snps 256]
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.api import KRRConfig, KRRSession, PrecisionPlan


def fmt(nbytes: float) -> str:
    return f"{nbytes / (1 << 20):8.2f} MiB"


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--individuals", type=int, default=4096)
    parser.add_argument("--snps", type=int, default=256)
    parser.add_argument("--tile-size", type=int, default=256)
    parser.add_argument("--budget-fraction", type=float, default=0.25)
    # the peak<=budget contract needs the pinned working set
    # (<= workers x 3 tiles) to fit inside the budget
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args()

    rng = np.random.default_rng(args.seed)
    n = args.individuals
    g_train = rng.integers(0, 3, size=(n, args.snps)).astype(np.float64)
    y = rng.standard_normal(n)
    g_test = rng.integers(0, 3, size=(max(256, n // 16), args.snps)
                          ).astype(np.float64)

    base = KRRConfig(tile_size=args.tile_size, workers=args.workers,
                     precision_plan=PrecisionPlan.adaptive_fp16())

    # ------------------------------------------------------------------
    # reference: fully resident
    # ------------------------------------------------------------------
    print(f"Fitting n={n} (tile {args.tile_size}) fully resident ...")
    t0 = time.perf_counter()
    ref = KRRSession(base)
    ref.fit(g_train, y)
    ref_pred = ref.predict(g_test)
    t_ref = time.perf_counter() - t0
    mosaic = ref.kernel_.nbytes()
    dense_fp64 = n * n * 8

    budget = int(mosaic * args.budget_fraction)
    print(f"  dense FP64 kernel would be {fmt(dense_fp64)}")
    print(f"  tile-mosaic footprint is   {fmt(mosaic)} "
          f"({mosaic / dense_fp64:.2%} of dense)")
    print(f"  store budget               {fmt(budget)} "
          f"({args.budget_fraction:.0%} of the mosaic)")

    # ------------------------------------------------------------------
    # out-of-core: same fit under the budget
    # ------------------------------------------------------------------
    print(f"\nFitting again under the budget ...")
    t0 = time.perf_counter()
    oo = KRRSession(base.with_options(store_budget_bytes=budget))
    oo.fit(g_train, y)
    oo_pred = oo.predict(g_test)
    t_oo = time.perf_counter() - t0
    stats = oo.store_stats()

    print(f"\nStoreStats (budgeted run):")
    print(f"  peak resident tile bytes   {fmt(stats.peak_resident_bytes)} "
          f"(budget {fmt(budget)})")
    print(f"  spills {stats.spills:6d}   ({fmt(stats.bytes_spilled)} written)")
    print(f"  reloads {stats.reloads:5d}   ({fmt(stats.bytes_reloaded)} read, "
          f"{stats.prefetches} prefetched)")
    print(f"  clean drops {stats.drops:5d}   "
          f"budget overflows {stats.budget_overflows}")
    print(f"  wall clock: resident {t_ref:.1f} s vs budgeted {t_oo:.1f} s "
          f"({t_oo / t_ref:.2f}x)")

    bitwise = (np.array_equal(oo_pred, ref_pred)
               and np.array_equal(oo.weights_, ref.weights_))
    under = stats.peak_resident_bytes <= budget
    print(f"\n  predictions + weights bitwise identical: {bitwise}")
    print(f"  peak resident under budget:              {under}")
    if not (bitwise and under):
        raise SystemExit("out-of-core contract violated")


if __name__ == "__main__":
    main()
