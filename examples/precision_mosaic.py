#!/usr/bin/env python
"""Precision mosaics: how the adaptive rule tiles the kernel matrix.

Reproduces the idea behind Fig. 4 of the paper: build the KRR kernel
matrix for a synthetic cohort, apply the tile-centric adaptive
precision rule with the FP16 floor of an A100 and the FP8 floor of a
GH200, and print the resulting per-tile precision mosaics together
with the memory-footprint reduction.

Usage::

    python examples/precision_mosaic.py [--scale small]
"""

from __future__ import annotations

import argparse

from repro.experiments.heatmap import run_precision_heatmaps
from repro.precision import Precision


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="small",
                        choices=["tiny", "small", "medium", "large"])
    parser.add_argument("--accuracy", type=float, default=1e-3,
                        help="adaptive-rule storage accuracy threshold")
    args = parser.parse_args()

    print("Building the training kernel matrix and deciding tile precisions ...")
    results = run_precision_heatmaps(scale=args.scale, accuracy=args.accuracy)

    legend = {
        "D": Precision.FP64, "S": Precision.FP32, "h": Precision.FP16,
        "q": Precision.FP8_E4M3,
    }
    print("Legend: " + ", ".join(f"{sym} = {p.value}" for sym, p in legend.items()))
    for gpu, experiment in results.items():
        heatmap = experiment.heatmap
        print()
        print(f"=== {gpu} (hardware floor: {experiment.low_precision.value}) ===")
        print(heatmap.render())
        print(f"tile fractions: " + ", ".join(
            f"{p.value}={frac:.2f}" for p, frac in sorted(
                heatmap.fractions.items(), key=lambda kv: -kv[1])))
        print(f"off-diagonal tiles at the floor: "
              f"{experiment.offdiagonal_low_fraction:.0%}")
        print(f"kernel-matrix footprint reduction vs FP32: "
              f"{experiment.footprint_reduction:.2f}x")


if __name__ == "__main__":
    main()
