#!/usr/bin/env python
"""Reusing the kernel factorization across phenotypes.

One practical advantage of the direct (Cholesky-based) KRR solver the
paper points out (Sec. V-B3): once the kernel matrix ``K + alpha*I`` is
factorized, every additional phenotype costs only two triangular
solves — unlike deep-learning approaches that retrain per phenotype.

This example runs a tile-native :class:`repro.api.KRRSession` once
(Build + Associate) on the first disease of a synthetic cohort, then
solves for the remaining phenotypes by reusing the factors, and
verifies the reused solutions match a from-scratch Associate phase.

Usage::

    python examples/multi_phenotype_reuse.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.api import KRRConfig, KRRSession, pearson_correlation
from repro.data import make_ukb_like_cohort


def main() -> None:
    cohort = make_ukb_like_cohort(n_individuals=500, n_snps=64, seed=3)
    split = cohort.split(train_fraction=0.8, seed=0)
    train, test = split.train, split.test

    session = KRRSession(KRRConfig(tile_size=50))

    print("Fitting KRR on the first phenotype (Build + Associate) ...")
    t0 = time.perf_counter()
    session.fit(train.genotypes, train.phenotypes[:, :1], train.confounders)
    fit_time = time.perf_counter() - t0
    print(f"  fit time: {fit_time:.2f} s "
          f"(Build {session.phase_flops['build']:.2e} ops, "
          f"Associate {session.phase_flops['associate']:.2e} ops)")

    print("Solving the remaining phenotypes by reusing the Cholesky factors ...")
    t0 = time.perf_counter()
    extra_weights = session.solve_additional_phenotypes(train.phenotypes[:, 1:])
    reuse_time = time.perf_counter() - t0
    print(f"  reuse time for {extra_weights.shape[1]} phenotypes: {reuse_time:.3f} s")

    # verify against a from-scratch fit on all phenotypes
    reference = KRRSession(KRRConfig(tile_size=50))
    reference.fit(train.genotypes, train.phenotypes, train.confounders)
    max_diff = float(np.max(np.abs(
        reference.weights_[:, 1:] - extra_weights)))
    print(f"  max |difference| vs from-scratch weights: {max_diff:.2e}")

    predictions = session.predict(test.genotypes, test.confounders)
    rho = pearson_correlation(test.phenotypes[:, 0], predictions[:, 0])
    print(f"Held-out Pearson correlation (first phenotype): {rho:.3f}")
    print("The factorization is phenotype-independent: adding traits to a "
          "multivariate GWAS is nearly free once K is factorized.")


if __name__ == "__main__":
    main()
