#!/usr/bin/env python
"""Factor-once hyperparameter sweeps with the CG solver route.

A (α, γ) grid search re-solves ``(K + alpha*I) W = Y`` with the *same*
kernel for every α, and on the direct route each re-solve pays a fresh
O(n³/3) tiled Cholesky.  With ``KRRConfig(solver="cg")`` the sweep goes
factor-once: each (fold, γ) session factors the sorted-middle α
exactly once, keeps that factor as the CG preconditioner, and solves
every other α with a handful of O(n²) preconditioned-CG iterations —
warm-started from the previous α's weights.

This example runs the same sweep on both routes and reports wall
clock, factorization counts, and the agreement of the selected
hyperparameters and per-fold validation MSPEs (the CG route's contract
is rtol 1e-6 against direct; measured agreement is far tighter).

Usage::

    python examples/fast_grid_search.py [--individuals 1024]
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.api import KRRConfig, PrecisionPlan
from repro.gwas.cv import grid_search_cv

ALPHAS = (0.5, 0.7, 1.0, 1.4, 2.0, 2.8)
GAMMAS = (0.01,)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--individuals", type=int, default=1024)
    parser.add_argument("--snps", type=int, default=64)
    parser.add_argument("--folds", type=int, default=4)
    args = parser.parse_args()

    rng = np.random.default_rng(2025)
    genotypes = rng.integers(
        0, 3, size=(args.individuals, args.snps)).astype(np.float64)
    phenotypes = (genotypes[:, :8] @ rng.standard_normal(8)
                  + 0.5 * rng.standard_normal(args.individuals))

    # FP64 plan so both routes solve the same systems; the CG route
    # composes with any precision plan — the mosaic then quantizes both
    # the kernel matvec tiles and the preconditioner factor.
    base = KRRConfig(tile_size=128, precision_plan=PrecisionPlan.fp64())

    results = {}
    for solver in ("direct", "cg"):
        t0 = time.perf_counter()
        result = grid_search_cv(genotypes, phenotypes, alphas=ALPHAS,
                                gammas=GAMMAS, n_folds=args.folds, seed=0,
                                base_config=base, solver=solver)
        seconds = time.perf_counter() - t0
        results[solver] = (result, seconds)
        print(f"{solver:>6}: {seconds:6.2f} s  "
              f"best (alpha={result.best_alpha}, gamma={result.best_gamma})  "
              f"{result.factorizations} factorizations, "
              f"{result.cg_fallbacks} fallbacks")
        phases = result.phase_seconds
        print("        phases: " + "  ".join(
            f"{k}={phases.get(k, 0.0):.2f}s"
            for k in ("build", "factor", "solve", "predict")))

    direct, direct_s = results["direct"]
    cg, cg_s = results["cg"]
    assert (cg.best_alpha, cg.best_gamma) == \
        (direct.best_alpha, direct.best_gamma)
    worst = max(
        float(np.max(np.abs(np.asarray(cg.fold_scores[key])
                            - np.asarray(errs))
                     / np.abs(errs)))
        for key, errs in direct.fold_scores.items())
    print(f"\nsame selection on both routes; "
          f"worst relative fold-MSPE deviation: {worst:.2e}")
    print(f"sweep speedup: {direct_s / cg_s:.2f}x "
          f"({direct.factorizations} -> {cg.factorizations} factorizations)")


if __name__ == "__main__":
    main()
