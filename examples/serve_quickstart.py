#!/usr/bin/env python
"""Model artifacts and serving: fit → export → save/load → serve.

Walks the full serving lifecycle of the reproduction:

1. fit a KRR session on a synthetic cohort (under an FP32 plan *and*
   an adaptive-FP8 plan),
2. export the fitted state as an immutable ``FittedModel`` artifact and
   ``save``/``load`` it — each tile in its native precision bytes, so
   the adaptive-FP8 artifact's file is a fraction of the FP32 one,
3. register the loaded models in a ``ModelRegistry`` (LRU-budgeted by
   resident tile bytes),
4. answer concurrent predict requests through a ``PredictionService``,
   whose micro-batching keeps every response bitwise identical to a
   solo ``session.predict``,
5. open the artifact **store-backed** (``FittedModel.load(path,
   store=TileStore(...))``): the factor tiles stay spilled on disk and
   fault in lazily, so the registered model costs a fraction of its
   full footprint in resident bytes — and a predict served after
   registry-pressure eviction and reload is still bitwise identical.

Usage::

    python examples/serve_quickstart.py [--individuals 512] [--snps 128]
"""

from __future__ import annotations

import argparse
import tempfile
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np

from repro.api import (
    FittedModel,
    KRRConfig,
    KRRSession,
    ModelRegistry,
    PrecisionPlan,
    PredictionService,
    ServeConfig,
    TileStore,
)
from repro.data import make_ukb_like_cohort


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--individuals", type=int, default=512)
    parser.add_argument("--snps", type=int, default=128)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    print(f"Simulating a cohort: {args.individuals} patients x "
          f"{args.snps} SNPs ...")
    cohort = make_ukb_like_cohort(
        n_individuals=args.individuals, n_snps=args.snps, seed=args.seed)
    split = cohort.split(train_fraction=0.8, seed=0)

    # ------------------------------------------------------------------
    # 1) fit under two precision plans
    # ------------------------------------------------------------------
    plans = {
        "fp32": PrecisionPlan.fp32(),
        "adaptive-fp8": PrecisionPlan.adaptive_fp8(),
    }
    artifacts: dict[str, Path] = {}
    sessions: dict[str, KRRSession] = {}
    tmp = Path(tempfile.mkdtemp(prefix="repro-serve-"))
    print("\nFitting and exporting model artifacts:")
    for name, plan in plans.items():
        session = KRRSession(KRRConfig(tile_size=64, precision_plan=plan))
        session.fit(split.train.genotypes, split.train.phenotypes,
                    split.train.confounders)
        sessions[name] = session

        # 2) export + save: native mixed-precision tile bytes on disk
        model = session.export_model()
        path = model.save(tmp / f"height-{name}")
        artifacts[name] = path
        mosaic = {p.value: f"{b / 1024:.0f} KiB"
                  for p, b in model.footprint_by_precision().items()}
        print(f"  {name:13s} artifact {path.stat().st_size / 1024:8.1f} KiB   "
              f"resident {model.resident_bytes() / 1024:8.1f} KiB   "
              f"factor mosaic {mosaic}")

    ratio = artifacts["adaptive-fp8"].stat().st_size / \
        artifacts["fp32"].stat().st_size
    print(f"  -> the adaptive-FP8 artifact is {ratio:.2f}x the FP32 file "
          "size (the on-disk footprint follows the precision mosaic)")

    # ------------------------------------------------------------------
    # 3) load + register (versions; LRU budget over resident tile bytes)
    # ------------------------------------------------------------------
    registry = ModelRegistry(max_resident_bytes=256 << 20)
    for name, path in artifacts.items():
        loaded = FittedModel.load(path)
        key = registry.register("height", loaded)
        print(f"Registered {path.name} as "
              f"{key.name!r} v{key.version} ({name})")

    # ------------------------------------------------------------------
    # 4) concurrent predicts through the service (latest = adaptive-fp8)
    # ------------------------------------------------------------------
    rng = np.random.default_rng(7)
    n_test = split.test.genotypes.shape[0]
    requests = []
    for _ in range(args.clients):
        rows = rng.choice(n_test, size=rng.integers(8, max(9, n_test // 2)),
                          replace=False)
        rows.sort()
        requests.append((split.test.genotypes[rows],
                         None if split.test.confounders is None
                         else split.test.confounders[rows]))

    print(f"\nServing {args.clients} concurrent predict requests "
          "(micro-batched) ...")
    with PredictionService(
            registry,
            config=ServeConfig(max_batch_requests=args.clients,
                               batch_window_s=0.01)) as service:
        with ThreadPoolExecutor(args.clients) as pool:
            results = list(pool.map(
                lambda rq: service.predict(rq[0], rq[1], model="height",
                                           timeout=120),
                requests))
        stats = service.stats

    reference = sessions["adaptive-fp8"]
    all_bitwise = all(
        np.array_equal(res.predictions, reference.predict(g, c))
        for res, (g, c) in zip(results, requests))
    print(f"  {stats.requests} requests in {stats.batches} micro-batch(es), "
          f"mean coalescing {stats.mean_coalesced:.1f} req/batch")
    for i, res in enumerate(results[:4]):
        print(f"  request {i}: {res.rows:4d} rows  "
              f"latency {res.latency_s * 1e3:7.2f} ms  "
              f"(queue {res.queue_s * 1e3:6.2f} ms)  "
              f"{res.flops / 1e6:8.1f} MFLOP  "
              f"coalesced with {res.coalesced_requests - 1} other(s)")
    print(f"  bitwise identical to solo session.predict: {all_bitwise}")
    if not all_bitwise:
        raise SystemExit("serving results diverged from the fitted session")

    # ------------------------------------------------------------------
    # 5) store-backed registration: resident bytes follow actual faults
    # ------------------------------------------------------------------
    print("\nStore-backed registration (out-of-core artifacts):")
    path = artifacts["fp32"]
    plain = FittedModel.load(path)
    with TileStore() as store:
        lazy = FittedModel.load(path, store=store)
        print(f"  fully-resident load: {plain.resident_bytes() / 1024:8.1f} "
              f"KiB resident")
        print(f"  store-backed load:   {lazy.resident_bytes() / 1024:8.1f} "
              f"KiB resident (factor spilled, "
              f"{lazy.factor.nbytes() / 1024:.1f} KiB on disk)")

        budgeted = ModelRegistry(max_resident_bytes=2 * lazy.resident_bytes())
        budgeted.register("height", lazy)
        # pressure the registry until the store-backed entry is evicted
        budgeted.register("other", plain)
        budgeted.register("other2", plain)
        evicted = budgeted.versions("height") == []
        # reload from the artifact and serve again: still bitwise exact
        budgeted.register("height", FittedModel.load(path, store=store))
        g, c = requests[0]
        after_reload = budgeted.get("height").predict(g, c)
        reload_bitwise = np.array_equal(after_reload,
                                        sessions["fp32"].predict(g, c))
        print(f"  evicted under registry pressure: {evicted}; predict after "
              f"reload bitwise identical: {reload_bitwise}")
        if not reload_bitwise:
            raise SystemExit("store-backed reload diverged from the session")


if __name__ == "__main__":
    main()
