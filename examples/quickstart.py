#!/usr/bin/env python
"""Quickstart: mixed-precision KRR GWAS on a synthetic cohort.

Runs the full three-phase workflow of the paper (Build / Associate /
Predict) on a small UK-BioBank-like synthetic cohort and compares the
Kernel Ridge Regression (KRR) predictions against the linear Ridge
Regression (RR) baseline — the headline accuracy comparison of the
paper (Table I / Fig. 5).

Usage::

    python examples/quickstart.py [--individuals 600] [--snps 64]
"""

from __future__ import annotations

import argparse

from repro.api import GWASWorkflow, KRRConfig, PrecisionPlan, RRConfig
from repro.data import make_ukb_like_cohort
from repro.experiments.report import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--individuals", type=int, default=600,
                        help="cohort size (patients)")
    parser.add_argument("--snps", type=int, default=64,
                        help="number of SNPs")
    parser.add_argument("--diseases", type=int, default=3,
                        help="number of disease phenotypes to analyse")
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    print(f"Simulating a UK-BioBank-like cohort: {args.individuals} patients "
          f"x {args.snps} SNPs ...")
    cohort = make_ukb_like_cohort(
        n_individuals=args.individuals, n_snps=args.snps, seed=args.seed,
    )
    # keep the requested number of diseases
    keep = min(args.diseases, cohort.n_phenotypes)
    names = cohort.phenotype_names[:keep]

    workflow = GWASWorkflow(cohort, train_fraction=0.8, seed=0)

    print("Running linear Ridge Regression (RR) GWAS ...")
    rr = workflow.run_rr(RRConfig(regularization=10.0, tile_size=32,
                                  precision_plan=PrecisionPlan.adaptive_fp16()))

    print("Running mixed-precision Kernel Ridge Regression (KRR) GWAS ...")
    krr = workflow.run_krr(KRRConfig(tile_size=64,
                                     precision_plan=PrecisionPlan.adaptive_fp16()))

    rows = []
    for name in names:
        rows.append({
            "phenotype": name,
            "RR MSPE": rr.mspe(name),
            "KRR MSPE": krr.mspe(name),
            "RR Pearson": rr.pearson(name),
            "KRR Pearson": krr.pearson(name),
        })
    print()
    print(format_table(rows, precision=3))
    print()
    print(f"Mean Pearson correlation:  RR = {rr.mean_pearson():.3f}   "
          f"KRR = {krr.mean_pearson():.3f}")
    print("KRR captures the epistatic (non-linear) part of the genetic signal "
          "that the linear model misses.")
    if krr.phase_flops:
        build = krr.phase_flops.get("build", 0.0)
        associate = krr.phase_flops.get("associate", 0.0)
        print(f"Operation counts: Build = {build:.3e}, Associate = {associate:.3e}")


if __name__ == "__main__":
    main()
