#!/usr/bin/env python
"""Inspect the task-runtime execution of a tiled mixed-precision Cholesky.

The paper's solver is orchestrated by the PaRSEC dynamic runtime; this
example drives the reproduction's runtime on a small kernel matrix and
prints what PaRSEC-style tracing would show: the task DAG size, the
task mix (POTRF/TRSM/SYRK/GEMM), the simulated schedule across devices,
the precision-split operation counts, and the bytes moved by the
communication engine under the sender/receiver conversion policy.

Usage::

    python examples/task_runtime_trace.py [--devices 4] [--tiles 8]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.data import make_ukb_like_cohort
from repro.distance.build import KernelBuilder
from repro.experiments.report import format_table
from repro.gwas.config import KRRConfig, PrecisionPlan
from repro.linalg import cholesky
from repro.runtime import Runtime
from repro.tiles.layout import TileLayout


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--devices", type=int, default=4,
                        help="number of simulated GPUs")
    parser.add_argument("--tiles", type=int, default=8,
                        help="tile-grid dimension of the kernel matrix")
    parser.add_argument("--tile-size", type=int, default=40)
    args = parser.parse_args()

    n = args.tiles * args.tile_size
    cohort = make_ukb_like_cohort(n_individuals=n, n_snps=64, seed=11)
    cfg = KRRConfig(tile_size=args.tile_size,
                    precision_plan=PrecisionPlan.adaptive_fp16())

    print(f"Building a {n}x{n} kernel matrix ({args.tiles}x{args.tiles} tiles) ...")
    builder = KernelBuilder(gamma=cfg.effective_gamma(cohort.n_snps),
                            tile_size=args.tile_size,
                            adaptive_rule=cfg.precision_plan.adaptive_rule())
    build = builder.build_training(cohort.genotypes, cohort.confounders)
    a = build.to_dense() + cfg.alpha * np.eye(n)

    plan_map = cfg.precision_plan.precision_map(
        TileLayout.square(n, args.tile_size), matrix=a)

    print(f"Factorizing through the task runtime on {args.devices} simulated GPUs ...")
    # execution="simulated" keeps the device-timing model this example
    # reports on; the default ("threaded") executes the same DAG for
    # real on a worker pool — see docs/architecture.md
    runtime = Runtime(num_devices=args.devices, execution="simulated")
    result = cholesky(a, tile_size=args.tile_size, working_precision="fp32",
                      precision_map=plan_map, runtime=runtime)

    # run() drains the pending graph; the executed DAG is retained
    graph = runtime.last_graph
    print(f"\nTask DAG: {graph.num_tasks} tasks, "
          f"{graph.num_edges} dependency edges "
          f"(critical path: {graph.critical_path_length()} tasks)")
    print("Task mix:", result.task_counts)
    print("Operation count by precision:",
          {p.value: f"{f:.3e}" for p, f in result.flops_by_precision.items()})

    schedule = result.schedule
    print(f"\nSimulated makespan: {schedule.makespan * 1e3:.3f} ms "
          f"on {args.devices} devices")
    print(format_table([{
        "device": d, "busy fraction": u,
    } for d, u in sorted(schedule.trace.utilization_by_device().items())],
        precision=3))
    print(f"Bytes moved between devices: {schedule.comm.total_bytes:,} "
          f"({schedule.comm.num_transfers} transfers)")
    by_policy = {k.value: v for k, v in schedule.comm.bytes_by_policy().items()}
    print(f"Conversion placement (sender vs receiver): {by_policy}")

    # correctness check against NumPy
    reference = np.linalg.cholesky(a)
    error = np.linalg.norm(result.to_dense() - reference) / np.linalg.norm(reference)
    print(f"\nRelative error vs FP64 Cholesky: {error:.2e} "
          "(FP16 off-diagonal tiles, FP32 panels)")


if __name__ == "__main__":
    main()
