"""Fig. 7 — Build-phase (INT8 distance SYRK) weak scaling on Alps.

Paper series: 107.4, 208.1, 382.7, 671.0, 1296.0 PFlop/s on 256→4096
GH200 superchips — a 12.07x speedup (75% parallel efficiency) and more
than 1 ExaOp/s of INT8 throughput at the largest scale.
"""

from conftest import run_once

from repro.experiments.perf_figures import run_fig07_build_scaling
from repro.experiments.report import format_table

PAPER_SERIES = {256: 107.40, 512: 208.07, 1024: 382.73, 2048: 671.03, 4096: 1296.00}


def test_fig07_build_weak_scaling(benchmark):
    series = run_once(benchmark, run_fig07_build_scaling)

    rows = [{"GPUs": int(x), "model PFlop/s": y, "paper PFlop/s": PAPER_SERIES[int(x)]}
            for x, y in zip(series.x, series.y)]
    print("\n=== Fig. 7: Build phase weak scaling on Alps ===")
    print(format_table(rows, precision=4))
    print(f"speedup 256 -> 4096 GPUs: {series.meta['speedup']:.2f}x "
          f"(paper: 12.07x)")

    # monotone increase, >1 ExaOp/s at 4096 GPUs, speedup in the paper's range
    assert series.y == sorted(series.y)
    assert series.y[-1] > 1000.0
    assert 10.0 <= series.meta["speedup"] <= 16.0
    # model within ~35% of the paper's absolute numbers at every point
    for x, y in zip(series.x, series.y):
        assert abs(y - PAPER_SERIES[int(x)]) / PAPER_SERIES[int(x)] < 0.35
