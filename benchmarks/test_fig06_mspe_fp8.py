"""Fig. 6 — MSPE with the FP8 floor on msprime-like (coalescent) cohorts.

Paper result: the MSPE of FP8-enabled KRR is slightly higher than
FP16-enabled KRR but remains lower than FP16-enabled RR.
"""

from conftest import run_once

from repro.experiments.mspe_sweep import run_mspe_fp8
from repro.experiments.report import format_table


def test_fig06_mspe_fp8(benchmark, accuracy_scale):
    result = run_once(benchmark, run_mspe_fp8, scale=accuracy_scale)

    print("\n=== Fig. 6: MSPE on coalescent cohorts (FP16 vs FP8 floors) ===")
    print(format_table(result.rows(), precision=4))

    for idx, _size in enumerate(result.sizes):
        rr = result.mspe["RR FP32/FP16"][idx]
        krr16 = result.mspe["KRR FP32/FP16"][idx]
        krr8 = result.mspe["KRR FP32/FP8"][idx]
        # KRR (either floor) beats RR
        assert krr16 < rr
        assert krr8 < rr
        # the FP8 floor costs at most a small MSPE increase over FP16
        assert krr8 <= krr16 * 1.10 + 1e-9
