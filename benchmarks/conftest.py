"""Shared configuration for the benchmark harness.

Each benchmark regenerates one table or figure of the paper (at a
scaled-down size for the accuracy experiments, at the paper's true
dimensions for the performance-model figures) and prints the same
rows/series the paper reports.  Run with::

    pytest benchmarks/ --benchmark-only

Pass ``-s`` to see the printed tables inline; every benchmark also
asserts the figure's qualitative "shape" (who wins, by roughly what
factor) so a regression in the reproduction fails the harness.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

#: Scale preset used by the accuracy benchmarks (seconds-to-minutes).
ACCURACY_SCALE = "small"


def effective_cpu_count() -> int:
    """CPUs actually available to the benchmark process.

    ``os.cpu_count()`` reports the machine; a CI runner or batch
    scheduler typically grants a smaller cgroup/affinity mask, and the
    scaling benchmarks must gate their speedup assertions (and record
    ``cpu_count`` rows in the BENCH JSONs) on what they can really use.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@pytest.fixture(scope="session")
def accuracy_scale() -> str:
    return ACCURACY_SCALE


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under the benchmark timer.

    The accuracy experiments are deterministic and relatively slow, so a
    single timed round is both sufficient and necessary to keep the
    harness runtime reasonable.
    """
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
