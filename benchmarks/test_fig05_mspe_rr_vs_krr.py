"""Fig. 5 — MSPE: band-precision RR configs vs adaptive RR vs adaptive KRR.

Paper result (per disease): the band configurations down to 20% FP32
match the full-FP32 MSPE, the most constricted configuration
deteriorates, the adaptive plan matches FP32, and KRR achieves a
clearly lower MSPE than every RR variant.  (At the scaled-down cohort
size the deterioration is demonstrated with an FP8-banded analogue —
see the module docstring of ``repro.experiments.mspe_sweep``.)
"""

from conftest import run_once

from repro.experiments.mspe_sweep import run_mspe_sweep
from repro.experiments.report import format_table


def test_fig05_mspe_sweep(benchmark, accuracy_scale):
    result = run_once(benchmark, run_mspe_sweep, scale=accuracy_scale)

    print("\n=== Fig. 5: MSPE per precision configuration ===")
    print(format_table(result.rows(), precision=4))

    fp32 = result.config_mspe("100(FP32)")
    adaptive_rr = result.config_mspe("Adaptive RR FP32/FP16")
    adaptive_krr = result.config_mspe("Adaptive KRR FP32/FP16")
    constricted = result.config_mspe("10(FP32):90(FP8_E4M3)")

    import numpy as np

    for disease in fp32:
        # moderate FP16 band configurations preserve the FP32 MSPE
        for frac in (80, 60, 40, 20):
            label = f"{frac}(FP32):{100 - frac}(FP16)"
            assert abs(result.mspe[disease][label] - fp32[disease]) \
                <= 0.02 * fp32[disease]
        # adaptive RR matches FP32 RR
        assert abs(adaptive_rr[disease] - fp32[disease]) <= 0.02 * fp32[disease]
        # the over-constricted configuration never *improves* meaningfully
        assert constricted[disease] >= fp32[disease] * (1.0 - 0.01)
        # KRR achieves a clearly lower MSPE than the RR reference
        assert adaptive_krr[disease] < 0.95 * fp32[disease]

    # on average the over-constricted configuration is worse than FP32,
    # and the deterioration is visible on at least one disease
    assert np.mean(list(constricted.values())) >= np.mean(list(fp32.values()))
    assert any(constricted[d] > 1.001 * fp32[d] for d in fp32)
