"""Figs. 8–10 — Associate-phase (MxP Cholesky) scaling across GPU generations.

Paper results at 1024 nodes of each system:

* Summit (Fig. 8c):   FP64/FP16 ≈ 154 PFlop/s, ~6.2x over FP64.
* Leonardo (Fig. 9c): FP64/FP16 ≈ 243 PFlop/s, ~3.6x over FP64/FP32.
* Alps (Fig. 10c):    FP32/FP16 ≈ 440 and FP32/FP8 ≈ 667 PFlop/s,
  3.2x and 4.8x over FP32.
"""

import pytest
from conftest import run_once

from repro.experiments.perf_figures import run_fig08_to_10_associate
from repro.experiments.report import format_table


def _print(system, series):
    print(f"\n=== Associate phase on {system} (largest matrix size) ===")
    rows = []
    for label, s in series.items():
        rows.append({"precision mix": label, "matrix size": int(s.x[-1]),
                     "PFlop/s": s.y[-1]})
    print(format_table(rows, precision=4))


def test_fig08_summit_associate(benchmark):
    series = run_once(benchmark, run_fig08_to_10_associate, system="Summit",
                      n_gpus=6144)
    _print("Summit (6144 V100s)", series)
    fp64 = series["FP64"].y[-1]
    fp16 = series["FP64/FP16"].y[-1]
    fp32 = series["FP64/FP32"].y[-1]
    # FP16 mix gives the largest speedup over FP64; ratios in the paper's range
    assert fp16 > fp32 > fp64
    assert 4.0 < fp16 / fp64 < 8.0
    assert 100.0 < fp16 < 220.0  # paper: ~154 PFlop/s


def test_fig09_leonardo_associate(benchmark):
    series = run_fig08_to_10_associate(system="Leonardo", n_gpus=4096)
    run_once(benchmark, run_fig08_to_10_associate, system="Leonardo", n_gpus=4096)
    _print("Leonardo (4096 A100s)", series)
    fp16 = series["FP64/FP16"].y[-1]
    fp32 = series["FP64/FP32"].y[-1]
    assert 2.5 < fp16 / fp32 < 4.5   # paper: 3.6x
    assert 180.0 < fp16 < 300.0      # paper: ~243 PFlop/s


def test_fig10_alps_associate(benchmark):
    series = run_fig08_to_10_associate(system="Alps", n_gpus=4096)
    run_once(benchmark, run_fig08_to_10_associate, system="Alps", n_gpus=4096)
    _print("Alps (4096 GH200s)", series)
    fp32 = series["FP32"].y[-1]
    fp16 = series["FP32/FP16"].y[-1]
    fp8 = series["FP32/FP8_E4M3"].y[-1]
    assert fp8 > fp16 > fp32
    assert 2.5 < fp16 / fp32 < 4.0        # paper: 3.2x
    assert 3.8 < fp8 / fp32 < 5.5         # paper: 4.8x
    assert fp16 == pytest.approx(440.0, rel=0.25)
    assert fp8 == pytest.approx(667.0, rel=0.25)
    # throughput grows (or saturates) with the matrix size
    for s in series.values():
        assert s.y[-1] >= s.y[0] * 0.95
