"""Old-vs-new Build engine benchmark (BLAS-backed INT8 Gram dispatch).

Times the seed Build path (int64 host matmul, per-tile quantization,
dense FP64 staging + ``from_dense`` re-tiling) against the rebuilt
engine (float64 dgemm dispatch, ``QuantizedOperand`` cache, streamed
symmetric tile storage, DAG row tasks) on the INT8 training kernel at
n=1024, ns=16384 — once per worker count of the threaded task runtime
— asserts the >= 10x wall-clock speedup with bitwise-identical output,
and writes ``BENCH_build.json`` at the repository root so future PRs
have a perf trajectory to compare against.
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from conftest import effective_cpu_count, run_once

from repro.distance.build import KernelBuilder
from repro.distance.euclidean import squared_norms
from repro.distance.kernels import gaussian_kernel
from repro.precision.formats import Precision
from repro.tiles.layout import TileLayout
from repro.tiles.matrix import TileMatrix

N, NS = 1024, 16384
TILE = 64
SNP_BLOCK = 4096
GAMMA = 0.01
WORKER_COUNTS = (1, 2, 8)
_REPO_ROOT = Path(__file__).resolve().parents[1]
_RESULT_FILE = _REPO_ROOT / "BENCH_build.json"

#: computed once, shared across the worker-count parameterization
_SEED_CACHE: dict = {}
_ENGINE_RESULTS: dict = {}
_PROCESS_RESULTS: dict = {}


_INT32_INFO = np.iinfo(np.int32)


def _seed_gemm_int8(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Frozen copy of the seed ``gemm_mixed`` INT8/INT32 path (transb).

    Kept verbatim-in-spirit so the "old" side of the benchmark stays
    anchored to the historical implementation even as the live engine
    evolves: float64 rint/clip quantization of both operands on every
    call, int64 host matmul (NumPy scalar loops, no BLAS), a full
    min/max overflow scan of the product, and an INT32 store rounding.
    """
    qa = np.clip(np.rint(np.asarray(a, dtype=np.float64)), -128, 127).astype(np.int8)
    qb = np.clip(np.rint(np.asarray(b, dtype=np.float64)), -128, 127).astype(np.int8)
    prod = qa.astype(np.int64) @ qb.astype(np.int64).T
    if prod.size and (prod.max() > _INT32_INFO.max or prod.min() < _INT32_INFO.min):
        raise OverflowError("INT32 accumulator overflow in integer GEMM")
    result = prod.astype(np.float64)
    return np.clip(np.rint(result), _INT32_INFO.min, _INT32_INFO.max).astype(np.int32)


def _seed_build(genotypes: np.ndarray) -> TileMatrix:
    """Faithful reproduction of the seed Build path.

    Per-tile int64 Gram products with per-call quantization, full dense
    FP64 staging matrix, and a ``from_dense`` re-tiling copy at the end.
    """
    n, ns = genotypes.shape
    layout = TileLayout(rows=n, cols=n, tile_size=TILE)
    d = squared_norms(genotypes, integer=True).astype(np.float64)
    k = np.zeros((n, n), dtype=np.float64)
    for bi in range(layout.tile_rows):
        rs = layout.tile_slice(bi, 0)[0]
        for bj in range(bi, layout.tile_cols):
            cs = layout.tile_slice(0, bj)[1]
            gram = np.zeros((rs.stop - rs.start, cs.stop - cs.start),
                            dtype=np.float64)
            for s0 in range(0, ns, SNP_BLOCK):
                s1 = min(s0 + SNP_BLOCK, ns)
                gram += np.asarray(
                    _seed_gemm_int8(genotypes[rs, s0:s1], genotypes[cs, s0:s1]),
                    dtype=np.float64,
                )
            dist = d[rs, None] + d[None, cs] - 2.0 * gram
            np.maximum(dist, 0.0, out=dist)
            tile_k = gaussian_kernel(dist, GAMMA)
            k[rs, cs] = tile_k
            if bi != bj:
                k[cs, rs] = tile_k.T
    np.fill_diagonal(k, 1.0)
    return TileMatrix.from_dense(k, TILE, Precision.FP32, symmetric=True)


def _seed_reference():
    """Seed path, computed once and reused by every parameterization."""
    if not _SEED_CACHE:
        rng = np.random.default_rng(2024)
        genotypes = rng.integers(0, 3, size=(N, NS)).astype(np.int8)
        t0 = time.perf_counter()
        seed_kernel = _seed_build(genotypes)
        _SEED_CACHE.update(
            genotypes=genotypes,
            dense=seed_kernel.to_dense(),
            seconds=time.perf_counter() - t0,
            tile_bytes=int(seed_kernel.nbytes()),  # FP32 lower triangle
        )
    return _SEED_CACHE


def _write_payload(seed_seconds: float, flops: float, tile_bytes: int,
                   max_dense_temp_elements: int) -> None:
    """(Re)write BENCH_build.json with every row accumulated so far."""
    payload = {
        "n": N,
        "ns": NS,
        "tile_size": TILE,
        "snp_block": SNP_BLOCK,
        "cpu_count": effective_cpu_count(),
        "seed_seconds": round(seed_seconds, 4),
        "seed_gflops": round(flops / seed_seconds / 1e9, 2),
        "seed_peak_memory_estimate_bytes":
            # dense FP64 staging + re-tiled FP32 lower triangle
            N * N * 8 + tile_bytes,
        "engine_by_workers": {
            w: _ENGINE_RESULTS[w] for w in sorted(_ENGINE_RESULTS)
        },
        "process_by_workers": {
            w: _PROCESS_RESULTS[w] for w in sorted(_PROCESS_RESULTS)
        },
        "max_dense_temp_elements": max_dense_temp_elements,
        "bitwise_identical": True,
    }
    _RESULT_FILE.write_text(json.dumps(payload, indent=2) + "\n")


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_bench_build_engine(benchmark, workers):
    seed = _seed_reference()
    genotypes, seed_seconds = seed["genotypes"], seed["seconds"]

    builder = KernelBuilder(gamma=GAMMA, tile_size=TILE, snp_block=SNP_BLOCK,
                            storage_precision=Precision.FP32,
                            execution="threaded", workers=workers)
    engine_result = run_once(benchmark, builder.build_training, genotypes)
    engine_seconds = benchmark.stats["mean"]

    np.testing.assert_array_equal(engine_result.to_dense(), seed["dense"])

    # GEMM-equivalent operation count of the full symmetric kernel
    flops = 2.0 * N * N * NS
    stats = engine_result.stats
    tile_bytes = seed["tile_bytes"]
    speedup = seed_seconds / engine_seconds
    _ENGINE_RESULTS[str(workers)] = {
        "engine_seconds": round(engine_seconds, 4),
        "speedup": round(speedup, 2),
        "engine_gflops": round(flops / engine_seconds / 1e9, 2),
        "engine_workers": stats.workers,
        "peak_memory_estimate_bytes":
            # streamed tile storage + in-flight row temporaries
            tile_bytes + (1 if stats.workers == 1 else stats.workers * 4) * 3
            * stats.max_dense_temp_elements * 8,
    }
    _write_payload(seed_seconds, flops, tile_bytes,
                   stats.max_dense_temp_elements)

    print(f"\n=== Build engine: seed path vs BLAS-backed engine "
          f"(workers={workers}) ===")
    print(f"seed   : {seed_seconds:8.2f} s  "
          f"({flops / seed_seconds / 1e9:8.2f} GF/s)")
    print(f"engine : {engine_seconds:8.2f} s  "
          f"({_ENGINE_RESULTS[str(workers)]['engine_gflops']:8.2f} GF/s)")
    print(f"speedup: {speedup:.2f}x (written to {_RESULT_FILE.name})")

    # Deliberately oversubscribed runs (more workers than cores, on a
    # single-core host) pay GIL/cache contention with nothing to
    # overlap on; the seed-vs-engine contrast is still the signal, so
    # the bar drops but never disappears.
    cpu_count = effective_cpu_count()
    floor = 10.0 if (cpu_count >= 2 or workers <= cpu_count) else 4.0
    assert speedup >= floor, (
        f"BLAS-backed Build must be >= {floor:.0f}x the seed path at "
        f"workers={workers}, got {speedup:.2f}x"
    )
    # the streamed build must not have staged a dense FP64 matrix
    assert stats.dense_staging_elements == 0
    assert stats.max_dense_temp_elements <= TILE * N


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_bench_build_engine_process(workers):
    """Process (GIL-free) backend rows of the Build benchmark.

    Timed with a plain ``perf_counter`` (one deterministic run, like
    the seed side) against the same cached seed reference; bitwise
    equality is asserted unconditionally, the wall-clock speedup over
    the *serial* drain only when real cores back the pool.
    """
    from repro.runtime.runtime import Runtime

    seed = _seed_reference()
    genotypes, seed_seconds = seed["genotypes"], seed["seconds"]

    rt = Runtime(execution="process", workers=workers)
    try:
        builder = KernelBuilder(gamma=GAMMA, tile_size=TILE,
                                snp_block=SNP_BLOCK,
                                storage_precision=Precision.FP32,
                                runtime=rt)
        t0 = time.perf_counter()
        engine_result = builder.build_training(genotypes)
        engine_seconds = time.perf_counter() - t0
    finally:
        rt.close()

    np.testing.assert_array_equal(engine_result.to_dense(), seed["dense"])

    flops = 2.0 * N * N * NS
    stats = engine_result.stats
    speedup = seed_seconds / engine_seconds
    _PROCESS_RESULTS[str(workers)] = {
        "engine_seconds": round(engine_seconds, 4),
        "speedup": round(speedup, 2),
        "engine_gflops": round(flops / engine_seconds / 1e9, 2),
        "engine_workers": stats.workers,
    }
    _write_payload(seed_seconds, flops, seed["tile_bytes"],
                   stats.max_dense_temp_elements)

    print(f"\n=== Build engine: process backend (workers={workers}) ===")
    print(f"seed    : {seed_seconds:8.2f} s")
    print(f"process : {engine_seconds:8.2f} s  ({speedup:.2f}x, "
          f"written to {_RESULT_FILE.name})")

    # Process workers pay real IPC (descriptor pickling, payload
    # segments) that only overlapping cores can amortize; without them
    # the bitwise contract above is the whole test.
    if effective_cpu_count() >= 4:
        assert speedup >= 4.0, (
            f"process-backend Build must be >= 4x the seed path at "
            f"workers={workers} on a multi-core host, got {speedup:.2f}x"
        )
    assert stats.dense_staging_elements == 0
