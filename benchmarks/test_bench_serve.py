"""Per-request vs micro-batched prediction-serving throughput.

Fits one KRR model on an n=2048 cohort, exports it as a
:class:`~repro.gwas.model.FittedModel`, and drives a
:class:`~repro.serve.PredictionService` with 8 concurrent clients in
two configurations:

* **per-request** — ``max_batch_requests=1``: every request executes
  alone, paying the full fixed cost of a predict call (train-panel
  quantization, BLAS float casts, squared norms, builder setup);
* **micro-batched** — ``max_batch_requests=8``: queued requests for
  the model coalesce into micro-batches that share one train-side
  operand context while keeping solo tile-aligned block shapes.

Asserts the micro-batched results stay bitwise equal to solo
``session.predict`` and that batching wins on throughput, then writes
``BENCH_serve.json`` at the repository root with both rates.
"""

import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np

from conftest import run_once

from repro.gwas.config import KRRConfig, PrecisionPlan, ServeConfig
from repro.gwas.session import KRRSession
from repro.serve.service import PredictionService

N, NS, NPH = 2048, 512, 4
TILE = 64
CLIENTS = 8
REQUESTS_PER_CLIENT = 4
ROWS_PER_REQUEST = 64
_REPO_ROOT = Path(__file__).resolve().parents[1]
_RESULT_FILE = _REPO_ROOT / "BENCH_serve.json"


def _drive(model, serve_config) -> tuple[float, list, object]:
    """Run the 8-client request storm against one service configuration."""
    rng = np.random.default_rng(99)
    cohorts = [rng.integers(0, 3, size=(ROWS_PER_REQUEST, NS)).astype(np.int8)
               for _ in range(CLIENTS * REQUESTS_PER_CLIENT)]
    barrier = threading.Barrier(CLIENTS)

    def client(worker_id: int):
        barrier.wait()
        mine = cohorts[worker_id::CLIENTS]
        return [service.predict(c, timeout=120) for c in mine]

    with PredictionService(model, config=serve_config) as service:
        t0 = time.perf_counter()
        with ThreadPoolExecutor(CLIENTS) as pool:
            per_client = list(pool.map(client, range(CLIENTS)))
        seconds = time.perf_counter() - t0
        stats = service.stats
    ordered = []
    for worker_id, batch in enumerate(per_client):
        for j, result in enumerate(batch):
            ordered.append((worker_id + j * CLIENTS, result))
    results = [r for _, r in sorted(ordered, key=lambda t: t[0])]
    return seconds, list(zip(cohorts, results)), stats


def test_bench_serve(benchmark):
    rng = np.random.default_rng(2026)
    g_train = rng.integers(0, 3, size=(N, NS)).astype(np.int8)
    y = rng.standard_normal((N, NPH))

    session = KRRSession(KRRConfig(
        tile_size=TILE, precision_plan=PrecisionPlan.adaptive_fp16()))
    session.fit(g_train, y)
    model = session.export_model()
    total_rows = CLIENTS * REQUESTS_PER_CLIENT * ROWS_PER_REQUEST

    # --- per-request baseline: no coalescing
    per_request_seconds, pairs, per_request_stats = _drive(
        model, ServeConfig(max_batch_requests=1, batch_window_s=0.0))
    assert per_request_stats.batches == CLIENTS * REQUESTS_PER_CLIENT

    # --- micro-batched serving (timed by the benchmark harness)
    batched_seconds_box = []

    def batched_run():
        seconds, pairs_b, stats = _drive(
            model, ServeConfig(max_batch_requests=CLIENTS,
                               batch_window_s=0.005))
        batched_seconds_box.append((seconds, pairs_b, stats))
        return seconds

    run_once(benchmark, batched_run)
    batched_seconds, batched_pairs, batched_stats = batched_seconds_box[0]

    # correctness: micro-batched results bitwise equal to solo predicts
    for cohort, result in batched_pairs[:6]:
        assert np.array_equal(result.predictions, session.predict(cohort))
    assert batched_stats.requests == CLIENTS * REQUESTS_PER_CLIENT
    assert batched_stats.batches < batched_stats.requests, (
        "the batched configuration should actually coalesce")

    per_request_throughput = total_rows / per_request_seconds
    batched_throughput = total_rows / batched_seconds
    speedup = batched_throughput / per_request_throughput

    payload = {
        "n_train": N,
        "ns": NS,
        "phenotypes": NPH,
        "tile_size": TILE,
        "clients": CLIENTS,
        "requests": CLIENTS * REQUESTS_PER_CLIENT,
        "rows_per_request": ROWS_PER_REQUEST,
        "total_rows": total_rows,
        "per_request_seconds": round(per_request_seconds, 4),
        "micro_batched_seconds": round(batched_seconds, 4),
        "per_request_rows_per_s": round(per_request_throughput, 1),
        "micro_batched_rows_per_s": round(batched_throughput, 1),
        "micro_batched_speedup": round(speedup, 3),
        "mean_coalesced_requests": round(batched_stats.mean_coalesced, 2),
        "max_coalesced_requests": batched_stats.max_coalesced,
        "bitwise_equal_to_solo_predict": True,
        "model_resident_bytes": model.resident_bytes(),
    }
    _RESULT_FILE.write_text(json.dumps(payload, indent=2) + "\n")

    print("\nPrediction-serving throughput (8 concurrent clients, "
          f"{CLIENTS * REQUESTS_PER_CLIENT} requests x {ROWS_PER_REQUEST} "
          "rows):")
    print(f"  per-request   : {per_request_seconds:8.3f} s  "
          f"({per_request_throughput:9.1f} rows/s)")
    print(f"  micro-batched : {batched_seconds:8.3f} s  "
          f"({batched_throughput:9.1f} rows/s)")
    print(f"  speedup       : {speedup:8.2f}x   "
          f"(mean coalescing {batched_stats.mean_coalesced:.2f} req/batch)")

    assert speedup > 1.0, (
        f"micro-batching should beat per-request serving "
        f"({batched_seconds:.3f}s vs {per_request_seconds:.3f}s)")
