"""Fig. 14 — large-scale breakdown and cross-system comparison.

Paper results: (a–d) on 1024–1936 Alps nodes the Build phase sustains
the highest throughput and keeps the end-to-end KRR scaling; (e) across
systems, Alps reaches 2.109 ExaOp/s for Build and 1.805 ExaOp/s for the
full KRR — about five orders of magnitude above the CPU-only REGENIE
baseline credited with a full dual-socket Genoa node.
"""

from conftest import run_once

from repro.experiments.perf_figures import run_fig14_breakdown, run_fig14e_systems
from repro.experiments.report import format_table


def test_fig14abcd_phase_breakdown(benchmark):
    breakdown = run_once(benchmark, run_fig14_breakdown)

    print("\n=== Fig. 14a-d: phase breakdown on Alps ===")
    for nodes, rows in breakdown.items():
        print(f"\n{nodes} nodes ({nodes * 4} GH200s)")
        print(format_table(rows, precision=4))

    for nodes, rows in breakdown.items():
        for row in rows:
            # the Build phase dominates; KRR sits between Associate and Build
            assert row["build_pflops"] > row["associate_pflops"]
            assert row["associate_pflops"] < row["krr_pflops"] <= row["build_pflops"]
        # larger matrices do not lose throughput (weak-scaling regime)
        krr = [r["krr_pflops"] for r in rows]
        assert krr[-1] >= krr[0] * 0.9

    # more nodes -> more throughput at the memory-limited size
    largest = {nodes: rows[-1]["krr_pflops"] for nodes, rows in breakdown.items()}
    ordered = [largest[n] for n in sorted(largest)]
    assert ordered == sorted(ordered)


def test_fig14e_cross_system_and_regenie(benchmark):
    result = run_once(benchmark, run_fig14e_systems)

    print("\n=== Fig. 14e: cross-system comparison ===")
    print(format_table(result["systems"], precision=4))
    print(f"Alps end-to-end KRR: {result['alps_krr_exaops']:.2f} ExaOp/s "
          "(paper: 1.805)")
    print(f"Headroom over REGENIE: {result['regenie_speedup']:.2e}x "
          f"(~{result['regenie_orders_of_magnitude']:.1f} orders of magnitude; "
          "paper: ~5)")

    rows = {r["system"]: r for r in result["systems"]}
    # Alps leads; > 1 ExaOp/s end-to-end; Frontier second
    assert rows["Alps"]["krr_pflops"] == max(r["krr_pflops"]
                                             for r in result["systems"])
    assert result["alps_krr_exaops"] > 1.0
    assert rows["Frontier"]["krr_pflops"] > rows["Leonardo"]["krr_pflops"]
    # Alps beats Leonardo by >2x on the Associate phase (paper: 2x per GPU,
    # 4x with twice the GPUs)
    assert rows["Alps"]["associate_pflops"] > 2.0 * rows["Leonardo"]["associate_pflops"]
    # the REGENIE comparison lands at about five orders of magnitude
    assert 4.5 <= result["regenie_orders_of_magnitude"] <= 6.5
