"""Hyperparameter-sweep benchmark: factor-once CG vs per-α direct CV.

Runs the same K-fold (α, γ) grid search at n=2048 on both solver
routes — direct (one O(n³/3) tiled Cholesky per α) and CG (one
factorization per (fold, γ), preconditioned-CG solves for every other
α) — on a single core, and asserts the acceptance contract: **≥2x
sweep wall-clock speedup, identical (α, γ) selection, per-fold MSPEs
within rtol 1e-6, factorization count dropping from A to 1 per
(fold, γ)**.  Writes ``BENCH_cv.json`` at the repository root so
future PRs can track the sweep cost model.

Each route is timed twice (interleaved) and scored by its *minimum* —
the standard estimator of the noise-free cost on a shared box, where
either route can be handed a 20% slowdown by scheduler jitter alone.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.gwas.config import KRRConfig, PrecisionPlan
from repro.gwas.cv import grid_search_cv

N = 2048
SNPS = 64
TILE = 256
ALPHAS = (0.5, 0.7, 1.0, 1.4, 2.0, 2.8)
GAMMAS = (0.01,)
FOLDS = 6
REPS = 3
_REPO_ROOT = Path(__file__).resolve().parents[1]
_RESULT_FILE = _REPO_ROOT / "BENCH_cv.json"


def _cohort(seed: int = 2025):
    rng = np.random.default_rng(seed)
    genotypes = rng.integers(0, 3, size=(N, SNPS)).astype(np.float64)
    phenotypes = (genotypes[:, :8] @ rng.standard_normal(8)
                  + 0.5 * rng.standard_normal(N))
    return genotypes, phenotypes


def _sweep(solver: str, cohort):
    genotypes, phenotypes = cohort
    # FP64 plan + serial/1-worker: a single-core apples-to-apples
    # measurement where both routes solve the same FP64 systems.  CG
    # stops at 1e-7 relative residual — two orders tighter than the
    # 1e-6 MSPE agreement the contract demands (measured headroom is
    # larger still: fold MSPEs of the two routes agree to ~1e-9).
    base = KRRConfig(tile_size=TILE, precision_plan=PrecisionPlan.fp64(),
                     execution="serial", workers=1, cg_tol=1e-7)
    t0 = time.perf_counter()
    result = grid_search_cv(genotypes, phenotypes, alphas=ALPHAS,
                            gammas=GAMMAS, n_folds=FOLDS, seed=0,
                            base_config=base, solver=solver)
    return result, time.perf_counter() - t0


def test_bench_factor_once_cv_sweep():
    cohort = _cohort()
    times = {"direct": [], "cg": []}
    results = {}
    for _ in range(REPS):
        for solver in ("direct", "cg"):
            result, seconds = _sweep(solver, cohort)
            times[solver].append(seconds)
            results[solver] = result
    direct, cg = results["direct"], results["cg"]
    direct_s, cg_s = min(times["direct"]), min(times["cg"])
    speedup = direct_s / cg_s
    sessions = FOLDS * len(GAMMAS)

    # --- the acceptance contract -------------------------------------
    assert (cg.best_alpha, cg.best_gamma) == \
        (direct.best_alpha, direct.best_gamma), "selection diverged"
    for key, errs in direct.fold_scores.items():
        np.testing.assert_allclose(cg.fold_scores[key], errs, rtol=1e-6)
    assert direct.factorizations == sessions * len(ALPHAS)
    assert cg.cg_fallbacks == 0
    assert cg.factorizations == sessions, (
        "the CG sweep must factor exactly once per (fold, gamma)")
    assert speedup >= 2.0, (
        f"factor-once CG sweep only {speedup:.2f}x faster than per-alpha "
        f"direct ({cg_s:.2f}s vs {direct_s:.2f}s)")

    payload = {
        "n": N,
        "snps": SNPS,
        "tile_size": TILE,
        "plan": "fp64",
        "alphas": list(ALPHAS),
        "gammas": list(GAMMAS),
        "n_folds": FOLDS,
        "reps": REPS,
        "direct_seconds": round(direct_s, 3),
        "cg_seconds": round(cg_s, 3),
        "speedup_x": round(speedup, 3),
        "direct_seconds_all": [round(s, 3) for s in times["direct"]],
        "cg_seconds_all": [round(s, 3) for s in times["cg"]],
        "direct_factorizations": direct.factorizations,
        "cg_factorizations": cg.factorizations,
        "cg_fallbacks": cg.cg_fallbacks,
        "best_alpha": cg.best_alpha,
        "best_gamma": cg.best_gamma,
        "same_selection": True,
        "fold_mspe_rtol": 1e-6,
        "direct_phase_seconds": {k: round(v, 3)
                                 for k, v in direct.phase_seconds.items()},
        "cg_phase_seconds": {k: round(v, 3)
                             for k, v in cg.phase_seconds.items()},
    }
    _RESULT_FILE.write_text(json.dumps(payload, indent=2) + "\n")

    print(f"\n=== Factor-once CV sweep (n={N}, {len(ALPHAS)} alphas, "
          f"{FOLDS} folds, 1 core, best of {REPS}) ===")
    print(f"per-alpha direct : {direct_s:7.2f} s "
          f"({direct.factorizations} factorizations)")
    print(f"factor-once CG   : {cg_s:7.2f} s "
          f"({cg.factorizations} factorizations, "
          f"{cg.cg_fallbacks} fallbacks)")
    print(f"speedup          : {speedup:7.2f}x "
          f"(written to {_RESULT_FILE.name})")
    for name, result in (("direct", direct), ("cg", cg)):
        secs = result.phase_seconds
        print(f"  {name:>6} phases : " + "  ".join(
            f"{k}={secs.get(k, 0.0):.2f}s"
            for k in ("build", "factor", "solve", "predict")))
