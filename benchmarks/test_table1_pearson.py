"""Table I — Pearson correlations: RR vs KRR per phenotype.

Paper result: for every phenotype the KRR prediction correlates much
more strongly with the held-out ground truth than the RR prediction
(0.81–0.87 vs 0.20–0.32 at the paper's scale — "up to four times
more"); on the synthetic msprime cohort the FP8 run sits between
RR-FP16 and KRR-FP16.
"""

import numpy as np
from conftest import run_once

from repro.experiments.pearson import run_pearson_table
from repro.experiments.report import format_table


def test_table1_pearson_correlations(benchmark, accuracy_scale):
    table = run_once(benchmark, run_pearson_table, scale=accuracy_scale)

    print("\n=== Table I: Pearson correlations (RR vs KRR) ===")
    print(format_table(table.rows(), precision=4))

    diseases = [k for k in table.rr_fp16 if k != "Synthetic [msprime]"]
    rr_mean = float(np.mean([table.rr_fp16[d] for d in diseases]))
    krr_mean = float(np.mean([table.krr_fp16[d] for d in diseases]))
    print(f"mean over diseases: RR-FP16 = {rr_mean:.3f}, KRR-FP16 = {krr_mean:.3f} "
          f"(advantage {krr_mean / max(rr_mean, 1e-9):.2f}x)")

    # shape: KRR clearly ahead of RR on average and on most diseases
    assert krr_mean > rr_mean + 0.1
    wins = sum(table.krr_fp16[d] > table.rr_fp16[d] for d in diseases)
    assert wins >= len(diseases) - 1

    # synthetic msprime row: KRR-FP8 between RR-FP16 and KRR-FP16 (allowing
    # a small tolerance around the FP16 value, as in the paper's Table I)
    name = "Synthetic [msprime]"
    assert table.krr_fp16[name] > table.rr_fp16[name]
    assert table.krr_fp8[name] is not None
    assert table.krr_fp8[name] > table.rr_fp16[name]
    assert table.krr_fp8[name] <= table.krr_fp16[name] + 0.05
