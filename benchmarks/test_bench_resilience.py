"""Resilience overhead benchmark: fault-free vs chaos-injected fit.

Runs the full Build → Factor → Solve → Predict pipeline twice at
n=2048 under a small store budget — once fault-free, once under a
deterministic transient-fault plan (runtime task faults + segment-read
I/O faults) with task retries enabled — asserts the ISSUE 6 acceptance
contract (**bitwise identical predictions, every fault absorbed**) and
writes ``BENCH_resilience.json`` at the repository root so future PRs
can track the fault-tolerance overhead.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.gwas.config import KRRConfig, PrecisionPlan
from repro.gwas.session import KRRSession
from repro.resilience import FaultPlan, FaultSite
from repro.resilience.faults import (
    SITE_SEGMENT_READ,
    SITE_TASK_BODY,
    fault_plan,
)

N = 2048
SNPS = 192
TILE = 128
#: Eight fp64 tiles of residency: forces steady spill/reload traffic.
BUDGET = 8 * TILE * TILE * 8
_REPO_ROOT = Path(__file__).resolve().parents[1]
_RESULT_FILE = _REPO_ROOT / "BENCH_resilience.json"


def _cohort(seed: int = 2026):
    rng = np.random.default_rng(seed)
    g_train = rng.integers(0, 3, size=(N, SNPS)).astype(np.float64)
    y = rng.standard_normal(N)
    g_test = rng.integers(0, 3, size=(N // 8, SNPS)).astype(np.float64)
    return g_train, y, g_test


def _fit_predict(config: KRRConfig, cohort):
    g_train, y, g_test = cohort
    t0 = time.perf_counter()
    session = KRRSession(config)
    session.fit(g_train, y)
    predictions = session.predict(g_test)
    seconds = time.perf_counter() - t0
    return session, predictions, seconds


def test_bench_chaos_overhead():
    cohort = _cohort()
    config = KRRConfig(tile_size=TILE, workers=4,
                       precision_plan=PrecisionPlan.adaptive_fp16(),
                       store_budget_bytes=BUDGET)

    _, clean_pred, clean_s = _fit_predict(config, cohort)

    # deterministic transient chaos: every 11th task attempt raises,
    # every 7th segment read errors (absorbed by the store's retry)
    plan = FaultPlan([
        FaultSite(site=SITE_TASK_BODY, kind="raise", every=11),
        FaultSite(site=SITE_SEGMENT_READ, kind="oserror", every=7),
    ], seed=2026)
    with fault_plan(plan):
        chaos_session, chaos_pred, chaos_s = _fit_predict(
            config.with_options(task_retries=3), cohort)
    stats = chaos_session.store_stats()
    retries = chaos_session.runtime.session_trace.total_retries

    # --- the acceptance contract -------------------------------------
    assert np.array_equal(chaos_pred, clean_pred), \
        "chaos run diverged from the fault-free run"
    task_faults = plan.fired_for(SITE_TASK_BODY)
    io_faults = plan.fired_for(SITE_SEGMENT_READ)
    assert task_faults >= 1 and io_faults >= 1, \
        "the chaos schedule must actually inject faults at both layers"
    assert stats.io_retries >= io_faults

    payload = {
        "n": N,
        "snps": SNPS,
        "tile_size": TILE,
        "plan": config.precision_plan.label(),
        "budget_bytes": BUDGET,
        "task_retries": 3,
        "injected_task_faults": task_faults,
        "injected_io_faults": io_faults,
        "task_retries_taken": retries,
        "store_io_retries": stats.io_retries,
        "fault_free_seconds": round(clean_s, 3),
        "chaos_seconds": round(chaos_s, 3),
        "chaos_overhead_x": round(chaos_s / clean_s, 3),
        "bitwise_identical": True,
    }
    _RESULT_FILE.write_text(json.dumps(payload, indent=2) + "\n")

    print(f"\n=== Chaos-injected KRR fit+predict (n={N}, tile={TILE}) ===")
    print(f"injected faults        : {task_faults} task, {io_faults} I/O")
    print(f"task retries taken     : {retries}")
    print(f"store I/O retries      : {stats.io_retries}")
    print(f"wall clock             : {clean_s:.2f} s fault-free vs "
          f"{chaos_s:.2f} s chaos ({chaos_s / clean_s:.2f}x)"
          f"  (written to {_RESULT_FILE.name})")
