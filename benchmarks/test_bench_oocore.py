"""Out-of-core KRR benchmark: budgeted vs unbudgeted end-to-end fit.

Runs the full Build → Factor → Solve → Predict pipeline at n=4096
twice — fully resident, and with the session's tile store budgeted at
25% of the tile-mosaic footprint — asserts the acceptance contract
(**bitwise identical results, peak resident tile bytes under budget**)
and writes ``BENCH_oocore.json`` at the repository root so future PRs
can track the out-of-core overhead.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.gwas.config import KRRConfig, PrecisionPlan
from repro.gwas.session import KRRSession

N = 4096
SNPS = 256
TILE = 256
BUDGET_FRACTION = 0.25
_REPO_ROOT = Path(__file__).resolve().parents[1]
_RESULT_FILE = _REPO_ROOT / "BENCH_oocore.json"


def _cohort(seed: int = 2025):
    rng = np.random.default_rng(seed)
    g_train = rng.integers(0, 3, size=(N, SNPS)).astype(np.float64)
    y = rng.standard_normal(N)
    g_test = rng.integers(0, 3, size=(N // 8, SNPS)).astype(np.float64)
    return g_train, y, g_test


def _fit_predict(config: KRRConfig, cohort):
    g_train, y, g_test = cohort
    t0 = time.perf_counter()
    session = KRRSession(config)
    session.fit(g_train, y)
    predictions = session.predict(g_test)
    seconds = time.perf_counter() - t0
    return session, predictions, seconds


def test_bench_out_of_core_budgeted_fit():
    cohort = _cohort()
    # workers=4: the peak<=budget contract requires the pinned working
    # set (<= workers x 3 tiles, 256 KiB each at tile 256/fp32) to fit
    # the 25% budget; both runs use the same pool for a fair wall-clock
    # comparison
    base = KRRConfig(tile_size=TILE, workers=4,
                     precision_plan=PrecisionPlan.adaptive_fp16())

    resident_session, resident_pred, resident_s = _fit_predict(base, cohort)
    mosaic = resident_session.kernel_.nbytes()
    dense_fp64 = N * N * 8
    budget = int(mosaic * BUDGET_FRACTION)

    oo_session, oo_pred, oo_s = _fit_predict(
        base.with_options(store_budget_bytes=budget), cohort)
    stats = oo_session.store_stats()

    # --- the acceptance contract -------------------------------------
    bitwise = (np.array_equal(oo_pred, resident_pred)
               and np.array_equal(oo_session.weights_,
                                  resident_session.weights_))
    assert bitwise, "budgeted run diverged from the fully-resident run"
    assert stats.peak_resident_bytes <= budget, (
        f"peak resident {stats.peak_resident_bytes} B exceeded the "
        f"{budget} B budget")
    assert stats.spills > 0 and stats.reloads > 0, (
        "a 25% budget must actually exercise the spill/reload paths")

    payload = {
        "n": N,
        "snps": SNPS,
        "tile_size": TILE,
        "plan": base.precision_plan.label(),
        "dense_fp64_bytes": dense_fp64,
        "mosaic_bytes": mosaic,
        "budget_bytes": budget,
        "budget_fraction_of_mosaic": BUDGET_FRACTION,
        "unbudgeted_seconds": round(resident_s, 3),
        "budgeted_seconds": round(oo_s, 3),
        "budgeted_overhead_x": round(oo_s / resident_s, 3),
        "store_stats": stats.to_dict(),
        "bitwise_identical": True,
        "peak_under_budget": True,
    }
    _RESULT_FILE.write_text(json.dumps(payload, indent=2) + "\n")

    print(f"\n=== Out-of-core KRR fit+predict (n={N}, tile={TILE}) ===")
    print(f"dense FP64 kernel      : {dense_fp64 / (1 << 20):9.1f} MiB")
    print(f"tile-mosaic footprint  : {mosaic / (1 << 20):9.1f} MiB")
    print(f"store budget (25%)     : {budget / (1 << 20):9.1f} MiB")
    print(f"peak resident          : "
          f"{stats.peak_resident_bytes / (1 << 20):9.1f} MiB")
    print(f"spills / reloads       : {stats.spills} / {stats.reloads} "
          f"({stats.bytes_spilled / (1 << 20):.1f} MiB out, "
          f"{stats.bytes_reloaded / (1 << 20):.1f} MiB in, "
          f"{stats.prefetches} prefetched)")
    print(f"wall clock             : {resident_s:.2f} s resident vs "
          f"{oo_s:.2f} s budgeted ({oo_s / resident_s:.2f}x)"
          f"  (written to {_RESULT_FILE.name})")
