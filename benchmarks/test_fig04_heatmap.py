"""Fig. 4 — precision heatmaps of the KRR kernel matrix.

Paper result: with the tile-centric adaptive precision rule, diagonal
tiles stay FP32 while every off-diagonal tile drops to the hardware
floor — FP16 on A100 (Fig. 4a), FP8 on GH200 (Fig. 4b).
"""

from conftest import run_once

from repro.experiments.heatmap import run_precision_heatmaps
from repro.precision import Precision


def test_fig04_precision_heatmaps(benchmark, accuracy_scale):
    results = run_once(benchmark, run_precision_heatmaps, scale=accuracy_scale)

    print("\n=== Fig. 4: adaptive-precision tile mosaics ===")
    for gpu, experiment in results.items():
        hm = experiment.heatmap
        print(f"\n[{gpu}] floor = {experiment.low_precision.value}")
        print(hm.render())
        print("tile fractions: "
              + ", ".join(f"{p.value}={f:.2f}" for p, f in hm.fractions.items()))
        print(f"off-diagonal tiles at floor: {experiment.offdiagonal_low_fraction:.0%}; "
              f"footprint reduction vs FP32: {experiment.footprint_reduction:.2f}x")

    # shape assertions (paper: all off-diagonal tiles at the floor)
    a100, gh200 = results["A100"], results["GH200"]
    assert a100.low_precision is Precision.FP16
    assert gh200.low_precision is Precision.FP8_E4M3
    assert a100.offdiagonal_low_fraction > 0.9
    assert gh200.offdiagonal_low_fraction > 0.9
    assert a100.diagonal_working_fraction == 1.0
    assert gh200.diagonal_working_fraction == 1.0
    assert gh200.footprint_reduction > a100.footprint_reduction > 1.3
