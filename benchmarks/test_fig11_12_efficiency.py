"""Figs. 11–12 — weak/strong scaling of the Associate phase per GPU.

Paper results: weak scaling is near-perfect (~57 TFlop/s per A100 on
Leonardo, ~100-160 TFlop/s per GH200 on Alps); strong scaling drops to
roughly 50% parallel efficiency at 4096 GPUs when the low precisions
are engaged, while the higher-precision runs keep ~77-81%.
"""

from conftest import run_once

from repro.experiments.perf_figures import run_fig11_12_efficiency
from repro.experiments.report import format_table


def _print(system, result):
    print(f"\n=== Associate scaling efficiency on {system} ===")
    for kind in ("weak", "strong"):
        rows = []
        for label, series in result[kind].items():
            for x, y in zip(series.x, series.y):
                rows.append({"mode": kind, "precision mix": label,
                             "GPUs": int(x), "efficiency": y})
        print(format_table(rows, precision=3))


def test_fig11_leonardo_efficiency(benchmark):
    result = run_once(benchmark, run_fig11_12_efficiency, system="Leonardo")
    _print("Leonardo", result)

    for series in result["weak"].values():
        assert min(series.y) > 0.75          # near-perfect weak scaling
    strong = {label: s.y[-1] for label, s in result["strong"].items()}
    # FP16 mix loses the most efficiency (paper: ~50% vs 81%)
    assert strong["FP64/FP16"] < strong["FP64/FP32"]
    assert 0.3 < strong["FP64/FP16"] < 0.75

    per_gpu = result["weak"]["FP64/FP16"].meta["per_gpu_tflops"][0]
    print(f"per-GPU FP64/FP16 weak-scaling rate: {per_gpu:.1f} TFlop/s "
          "(paper: ~57)")
    assert 40.0 < per_gpu < 75.0


def test_fig12_alps_efficiency(benchmark):
    result = run_once(benchmark, run_fig11_12_efficiency, system="Alps")
    _print("Alps", result)

    for series in result["weak"].values():
        assert min(series.y) > 0.75
    strong = {label: s.y[-1] for label, s in result["strong"].items()}
    # the lower the precision, the lower the strong-scaling efficiency
    assert strong["FP32"] >= strong["FP32/FP16"] >= strong["FP32/FP8_E4M3"]
    assert strong["FP32/FP8_E4M3"] < 0.8
    assert strong["FP32"] > 0.75

    per_gpu_fp8 = result["weak"]["FP32/FP8_E4M3"].meta["per_gpu_tflops"][0]
    print(f"per-GPU FP32/FP8 weak-scaling rate: {per_gpu_fp8:.1f} TFlop/s "
          "(paper: ~159)")
    assert 100.0 < per_gpu_fp8 < 200.0
