"""Micro-benchmarks and ablations of the design choices in DESIGN.md.

Not a paper figure, but the quantitative backing for the paper's two
key kernel-level claims and for the ablations listed in DESIGN.md:

* the GEMM-form INT8 distance computation is exact and much faster than
  the direct pairwise loop (Sec. V-B1 / VI-B2);
* the adaptive tile mosaic preserves the FP32 factorization accuracy
  while cutting the storage footprint (Sec. V-B2);
* shipping tiles at the narrower of source/destination precisions
  (conversion-at-sender/receiver) reduces the bytes moved (Sec. VI-B1).
"""

import numpy as np
import pytest

from repro.data.genotypes import simulate_genotypes
from repro.distance.euclidean import squared_euclidean_direct, squared_euclidean_gemm
from repro.linalg.cholesky import cholesky
from repro.precision.formats import Precision
from repro.runtime import Runtime
from repro.tiles.adaptive import AdaptivePrecisionRule, decide_tile_precisions
from repro.tiles.layout import TileLayout
from repro.tiles.matrix import TileMatrix


@pytest.fixture(scope="module")
def genotypes():
    return simulate_genotypes(300, 120, seed=3, maf_low=0.2)


def test_distance_gemm_form_vs_direct(benchmark, genotypes):
    """Ablation: GEMM-form distances vs the instruction-bound direct loop."""
    import time

    t0 = time.perf_counter()
    direct = squared_euclidean_direct(genotypes)
    direct_time = time.perf_counter() - t0

    gemm_form = benchmark(squared_euclidean_gemm, genotypes)

    np.testing.assert_array_equal(gemm_form, direct)
    print(f"\ndirect pairwise loop: {direct_time * 1e3:.1f} ms for "
          f"{genotypes.shape[0]}x{genotypes.shape[0]} distances "
          "(GEMM form timed by the benchmark fixture)")


def test_distance_int8_path_is_exact(benchmark, genotypes):
    """The INT8 tensor-core path loses nothing for 0/1/2 genotype data."""
    int8 = benchmark(squared_euclidean_gemm, genotypes, None, Precision.INT8)
    fp64 = squared_euclidean_gemm(genotypes, precision=Precision.FP64)
    np.testing.assert_array_equal(int8, fp64)


def test_adaptive_cholesky_accuracy_and_footprint(benchmark):
    """Ablation: adaptive mosaic vs uniform FP32 Cholesky."""
    rng = np.random.default_rng(0)
    n, nb = 192, 32
    a = 1e-3 * rng.standard_normal((n, n))
    a = a + a.T + np.diag(2.0 + rng.random(n))

    decisions = decide_tile_precisions(a, AdaptivePrecisionRule(), tile_size=nb)
    adaptive = benchmark.pedantic(
        cholesky, args=(a,), kwargs=dict(tile_size=nb, precision_map=decisions),
        rounds=1, iterations=1)
    uniform = cholesky(a, tile_size=nb)

    la, lu = adaptive.to_dense(), uniform.to_dense()
    err_adaptive = np.linalg.norm(la @ la.T - a) / np.linalg.norm(a)
    err_uniform = np.linalg.norm(lu @ lu.T - a) / np.linalg.norm(a)
    print(f"\nrelative factorization error: adaptive={err_adaptive:.2e}, "
          f"uniform FP32={err_uniform:.2e}")
    assert err_adaptive < 5e-3

    mosaic = TileMatrix.from_dense(a, nb, precision=lambda i, j: decisions[(i, j)])
    fp32 = TileMatrix.from_dense(a, nb, precision=Precision.FP32)
    reduction = fp32.nbytes() / mosaic.nbytes()
    print(f"storage footprint reduction from the mosaic: {reduction:.2f}x")
    assert reduction > 1.3


def test_tile_size_ablation(benchmark):
    """Ablation: the factorization accuracy is tile-size independent."""
    rng = np.random.default_rng(1)
    a = rng.standard_normal((128, 128))
    a = a @ a.T / 128 + 2.0 * np.eye(128)

    def factor_all():
        return {nb: cholesky(a, tile_size=nb, working_precision=Precision.FP32)
                for nb in (16, 32, 64)}

    results = benchmark.pedantic(factor_all, rounds=1, iterations=1)
    reference = np.linalg.cholesky(a)
    for nb, result in results.items():
        err = np.linalg.norm(result.to_dense() - reference) / np.linalg.norm(reference)
        print(f"tile {nb}: relative error vs FP64 = {err:.2e}")
        assert err < 1e-5


def test_conversion_placement_ablation(benchmark):
    """Ablation: adaptive conversion placement moves fewer bytes."""
    rng = np.random.default_rng(2)
    a = rng.standard_normal((160, 160))
    a = a @ a.T / 160 + 4.0 * np.eye(160)
    layout = TileLayout.square(160, 32)
    pmap = {t: (Precision.FP32 if t[0] == t[1] else Precision.FP16)
            for t in layout.iter_tiles()}

    def run(adaptive: bool) -> int:
        # conversion placement is a property of the simulated transfer
        # ledger; the threaded host executor moves no bytes
        runtime = Runtime(num_devices=4, adaptive_conversion=adaptive,
                          execution="simulated")
        cholesky(a, tile_size=32, precision_map=pmap, runtime=runtime)
        return runtime.comm.total_bytes

    adaptive_bytes = benchmark.pedantic(run, args=(True,), rounds=1, iterations=1)
    baseline_bytes = run(False)
    print(f"\nbytes moved: adaptive conversion = {adaptive_bytes:,}, "
          f"source-precision shipping = {baseline_bytes:,}")
    assert adaptive_bytes <= baseline_bytes
