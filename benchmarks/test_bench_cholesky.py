"""Serial vs DAG-parallel tiled Cholesky benchmark.

Factorizes the same n=2048 SPD matrix through the serial elimination
(``execution="serial"``), through the threaded out-of-order DAG
executor, and through the process (GIL-free) backend at 1/2/8
workers, asserts the results are **bitwise identical**, and writes
``BENCH_cholesky.json`` at the repository root so future PRs have a
factorization perf trajectory to compare against.

Wall-clock speedup needs physical cores; on single/dual-core hosts the
benchmark instead gates on the DAG's *work/critical-path* parallelism
(how much the out-of-order executor can overlap is a property of the
task graph, not of the host running the harness).  Both numbers are
recorded either way.
"""

import json
import time
from pathlib import Path

import numpy as np

from conftest import effective_cpu_count
from repro.linalg.cholesky import cholesky
from repro.precision.formats import Precision
from repro.runtime.runtime import Runtime

N = 2048
TILE = 256
WORKER_COUNTS = (1, 2, 8)
_REPO_ROOT = Path(__file__).resolve().parents[1]
_RESULT_FILE = _REPO_ROOT / "BENCH_cholesky.json"


def _spd(n: int, seed: int = 2024) -> np.ndarray:
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    a = a @ a.T / n
    return a + 4.0 * np.eye(n)


def test_bench_cholesky_dag_parallel():
    a = _spd(N)

    t0 = time.perf_counter()
    serial = cholesky(a, tile_size=TILE, working_precision=Precision.FP32,
                      execution="serial")
    serial_seconds = time.perf_counter() - t0
    serial_dense = serial.to_dense()

    threaded_seconds: dict[int, float] = {}
    for workers in WORKER_COUNTS:
        t0 = time.perf_counter()
        threaded = cholesky(a, tile_size=TILE,
                            working_precision=Precision.FP32,
                            execution="threaded", workers=workers)
        threaded_seconds[workers] = time.perf_counter() - t0
        np.testing.assert_array_equal(threaded.to_dense(), serial_dense)

    # Process (GIL-free) backend: workers are OS processes exchanging
    # tiles through mmap'd segment files.  Timed per worker count with
    # a session runtime so pool startup is inside the measurement only
    # once (the pool persists across a session's drains).
    process_seconds: dict[int, float] = {}
    for workers in WORKER_COUNTS:
        rt = Runtime(execution="process", workers=workers)
        try:
            t0 = time.perf_counter()
            proc = cholesky(a, tile_size=TILE,
                            working_precision=Precision.FP32, runtime=rt)
            process_seconds[workers] = time.perf_counter() - t0
            np.testing.assert_array_equal(proc.to_dense(), serial_dense)
        finally:
            rt.close()

    # DAG-structure parallelism of the same task graph: total work over
    # the heaviest dependency chain.  This bounds (and on multi-core
    # hosts predicts) the achievable out-of-order speedup.
    capture = Runtime(execution="serial")
    cholesky(a, tile_size=TILE, working_precision=Precision.FP32,
             runtime=capture)
    graph = capture.last_graph
    dag_parallelism = graph.total_flops() / graph.critical_path_flops()

    flops = N ** 3 / 3.0
    cpu_count = effective_cpu_count()
    wall_speedup_8 = serial_seconds / threaded_seconds[8]
    process_speedup_8 = serial_seconds / process_seconds[8]
    payload = {
        "n": N,
        "tile_size": TILE,
        "working_precision": "fp32",
        "cpu_count": cpu_count,
        "serial_seconds": round(serial_seconds, 4),
        "serial_gflops": round(flops / serial_seconds / 1e9, 2),
        "threaded_seconds": {
            str(w): round(s, 4) for w, s in threaded_seconds.items()
        },
        "wall_speedup_vs_serial": {
            str(w): round(serial_seconds / s, 2)
            for w, s in threaded_seconds.items()
        },
        "process_seconds": {
            str(w): round(s, 4) for w, s in process_seconds.items()
        },
        "process_wall_speedup_vs_serial": {
            str(w): round(serial_seconds / s, 2)
            for w, s in process_seconds.items()
        },
        "num_tasks": graph.num_tasks,
        "critical_path_tasks": graph.critical_path_length(),
        "dag_parallelism_work_over_depth": round(dag_parallelism, 2),
        "bitwise_identical": True,
    }
    _RESULT_FILE.write_text(json.dumps(payload, indent=2) + "\n")

    print("\n=== Tiled Cholesky: serial vs DAG-parallel (n=%d, tile=%d) ===" %
          (N, TILE))
    print(f"serial          : {serial_seconds:8.3f} s")
    for w in WORKER_COUNTS:
        print(f"threaded x{w:<2d}    : {threaded_seconds[w]:8.3f} s  "
              f"({serial_seconds / threaded_seconds[w]:5.2f}x)")
    for w in WORKER_COUNTS:
        print(f"process  x{w:<2d}    : {process_seconds[w]:8.3f} s  "
              f"({serial_seconds / process_seconds[w]:5.2f}x)")
    print(f"DAG parallelism : {dag_parallelism:5.2f}x work/critical-path "
          f"(written to {_RESULT_FILE.name})")

    # the structural parallelism of the DAG must always be there
    assert dag_parallelism >= 1.5, (
        f"work/critical-path parallelism {dag_parallelism:.2f}x < 1.5x — "
        "the factorization DAG lost its out-of-order parallelism"
    )
    if cpu_count >= 4:
        # with real cores behind the pool, the wall clock must follow
        assert wall_speedup_8 >= 1.5, (
            f"threaded Cholesky at 8 workers is only {wall_speedup_8:.2f}x "
            f"the serial path on {cpu_count} cores (expected >= 1.5x)"
        )
        assert process_speedup_8 > 1.0, (
            f"process Cholesky at 8 workers is only {process_speedup_8:.2f}x "
            f"the serial path on {cpu_count} cores (expected > 1.0x)"
        )
