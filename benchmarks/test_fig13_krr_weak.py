"""Fig. 13 — end-to-end KRR weak scaling on Alps vs the NS/NP ratio.

Paper result: the overall KRR throughput increases with the SNP-to-
patient ratio (the Build phase, whose share grows with NS, has the
highest throughput), for both the FP32/FP16 and FP32/FP8 configurations.
"""

from conftest import run_once

from repro.experiments.perf_figures import run_fig13_krr_weak_scaling
from repro.experiments.report import format_table


def test_fig13_krr_weak_scaling(benchmark):
    fp16 = run_once(benchmark, run_fig13_krr_weak_scaling, low_precision="FP16")
    fp8 = run_fig13_krr_weak_scaling(low_precision="FP8_E4M3")

    print("\n=== Fig. 13: KRR weak scaling on Alps (PFlop/s at 4096 GPUs) ===")
    rows = []
    for ratio in sorted(fp16):
        rows.append({"NS/NP ratio": ratio,
                     "FP32/FP16": fp16[ratio].y[-1],
                     "FP32/FP8": fp8[ratio].y[-1]})
    print(format_table(rows, precision=4))

    # throughput grows with the SNP ratio for both precision configurations
    for series in (fp16, fp8):
        finals = [series[r].y[-1] for r in sorted(series)]
        assert finals == sorted(finals)
        # weak scaling: throughput grows monotonically with GPU count
        for s in series.values():
            assert s.y == sorted(s.y)

    # FP8 helps only the Associate phase, so its advantage shrinks as NS grows
    gain_at_1 = fp8[1].y[-1] / fp16[1].y[-1]
    gain_at_5 = fp8[5].y[-1] / fp16[5].y[-1]
    assert gain_at_1 >= gain_at_5 >= 1.0
