"""Dense-path vs tile-native Associate+Predict benchmark.

Times the historical dense Associate/Predict path (``to_dense`` of the
built kernel, a full dense copy per regularization attempt, a dense
``from_dense`` re-tiling inside the factorization, and a monolithic
cross-kernel Predict) against the tile-native :class:`KRRSession`
(diagonal-tile regularization, tile-level factorization workspace,
row-batched Predict) at n=2048, asserts the predictions are identical
to <= 1e-10 relative error, and writes ``BENCH_associate.json`` at the
repository root recording the wall times and the peak-temporary
reduction of the redesign.
"""

import json
import time
from pathlib import Path

import numpy as np

from conftest import run_once

from repro.distance.build import KernelBuilder
from repro.gwas.config import KRRConfig
from repro.gwas.session import KRRSession
from repro.linalg.blas3 import gemm
from repro.linalg.cholesky import cholesky
from repro.linalg.solve import solve_cholesky
from repro.tiles.layout import TileLayout

N, NS, N_TEST, NPH = 2048, 512, 512, 4
TILE = 64
_REPO_ROOT = Path(__file__).resolve().parents[1]
_RESULT_FILE = _REPO_ROOT / "BENCH_associate.json"


def _dense_associate_predict(cfg: KRRConfig, kernel, g_train, y, g_test):
    """Frozen copy of the pre-session dense Associate/Predict path."""
    plan = cfg.precision_plan
    k_dense = kernel.to_dense()                      # dense n x n round-trip
    n = k_dense.shape[0]
    layout = TileLayout.square(n, cfg.tile_size)
    alpha = cfg.alpha if cfg.alpha > 0 else 1e-6
    diag = np.diag_indices(n)
    for _ in range(3):
        a = k_dense.copy()                           # full copy per attempt
        a[diag] += alpha
        pmap = plan.precision_map(layout, matrix=a)
        try:
            fact = cholesky(a, tile_size=cfg.tile_size,
                            working_precision=plan.working_precision,
                            precision_map=pmap)
            break
        except np.linalg.LinAlgError:
            alpha *= 10.0
    y_means = y.mean(axis=0)
    w = np.asarray(solve_cholesky(fact, y - y_means[None, :],
                                  precision=plan.working_precision),
                   dtype=np.float64)
    builder = KernelBuilder(
        kernel_type=cfg.kernel_type,
        gamma=cfg.effective_gamma(g_train.shape[1]),
        tile_size=cfg.tile_size, snp_precision=cfg.snp_precision,
        storage_precision=plan.working_precision)
    cross = builder.build_cross(g_test, g_train)     # monolithic cross kernel
    k_test = cross.to_dense()
    preds = gemm(k_test, w, tile_size=cfg.tile_size,
                 precision=plan.working_precision)
    return preds + y_means[None, :]


def _session_associate_predict(session: KRRSession, y, g_test):
    session.associate(y)
    return session.predict(g_test)


def test_bench_associate(benchmark):
    rng = np.random.default_rng(2025)
    g_train = rng.integers(0, 3, size=(N, NS)).astype(np.int8)
    g_test = rng.integers(0, 3, size=(N_TEST, NS)).astype(np.int8)
    y = rng.standard_normal((N, NPH))

    cfg = KRRConfig(tile_size=TILE, alpha=0.5)
    session = KRRSession(cfg)
    session.build(g_train)  # shared Build: both paths consume this kernel

    t0 = time.perf_counter()
    dense_pred = _dense_associate_predict(cfg, session.kernel_, g_train,
                                          y, g_test)
    dense_seconds = time.perf_counter() - t0

    tile_pred = run_once(benchmark, _session_associate_predict,
                         session, y, g_test)
    tile_seconds = benchmark.stats["mean"]

    rel = np.linalg.norm(tile_pred - dense_pred) / np.linalg.norm(dense_pred)
    assert rel <= 1e-10, f"tile-native predictions diverged: rel={rel:.2e}"

    # --- peak dense temporaries of the Associate+Predict phases
    kernel_bytes = int(session.kernel_.nbytes())
    batch = session._effective_batch(cfg.predict_batch_rows)
    dense_peak = (
        N * N * 8          # to_dense of the kernel
        + N * N * 8        # per-attempt regularized copy
        + N_TEST * N * 8   # monolithic cross kernel
    )
    tile_peak = (
        kernel_bytes       # factorization workspace (lower-tile copies);
                           # the regularized view shares off-diagonal
                           # tiles and allocates only new diagonal tiles
        + batch * N * 8    # one streamed Predict batch
    )
    payload = {
        "n": N,
        "ns": NS,
        "n_test": N_TEST,
        "phenotypes": NPH,
        "tile_size": TILE,
        "predict_batch_rows": batch,
        "dense_seconds": round(dense_seconds, 4),
        "tile_native_seconds": round(tile_seconds, 4),
        "speedup": round(dense_seconds / tile_seconds, 2),
        "relative_prediction_error": float(rel),
        "peak_temporary_bytes": {
            "dense_path": dense_peak,
            "tile_native": tile_peak,
            "reduction_factor": round(dense_peak / tile_peak, 2),
        },
    }
    _RESULT_FILE.write_text(json.dumps(payload, indent=2) + "\n")

    print("\n=== Associate+Predict: dense path vs tile-native session ===")
    print(f"dense path : {dense_seconds:7.2f} s  "
          f"(peak temporaries {dense_peak / 1e6:8.1f} MB)")
    print(f"tile-native: {tile_seconds:7.2f} s  "
          f"(peak temporaries {tile_peak / 1e6:8.1f} MB)")
    print(f"prediction agreement: rel err = {rel:.2e} "
          f"(written to {_RESULT_FILE.name})")

    # the redesign removes the dense n x n temporaries entirely
    assert payload["peak_temporary_bytes"]["reduction_factor"] >= 2.0
    # wall time is recorded (not asserted): this file is collected by
    # the blocking tier-1 run, and timing on shared CI runners is too
    # noisy for a hard threshold; the non-blocking benchmarks job
    # uploads BENCH_associate.json for the perf trajectory instead
